"""The v3 update protocol: remote edits are bit-identical to local ones.

Three layers of proof, bottom up:

* **Handler** — ``UpdateRequest`` batches against the serving core
  directly: version checks, conflict answers, version bumping, the
  commit audit trail (``HostedDocument.update_log``) and idempotent
  replay of both outcomes (committed and conflicted).
* **Transports** — the same edit script applied through
  :class:`~repro.net.client.RemoteUpdatableTree` over the in-process
  channel, the threaded socket server, the asyncio socket server and a
  resilient session must leave the hosted store bit-identical to the
  script applied by an in-process :class:`~repro.core.UpdatableTree` on
  an identically seeded clone.
* **Acceptance** — a 120k-node document served over real TCP, edited by
  a resilient remote client while 5% of all channel operations fault,
  converges to the in-process result with every batch applied exactly
  once (``REPRO_UPDATE_SCALE`` shrinks the document for quick local
  runs).
"""

import asyncio
import json
import os

import pytest

from repro.core import (
    UpdatableTree,
    choose_fp_ring,
    outsource_document,
)
from repro.errors import ProtocolError, UpdateConflictError
from repro.net import (
    ConflictResponse,
    FaultPlan,
    FaultyChannel,
    InstrumentedChannel,
    RemoteUpdatableTree,
    SearchServer,
    SocketChannel,
    ThreadedSearchServer,
    UpdateRequest,
    UpdateResponse,
    connect,
    connect_resilient,
    connect_socket,
    share_tree_from_dict,
    share_tree_to_dict,
    start_async_server,
)
from repro.net.aio import AsyncServerInterface
from repro.net.messages import decode_message
from repro.net.retry import RetryPolicy
from repro.workloads import (
    CatalogConfig,
    RandomXmlConfig,
    generate_catalog_document,
    generate_random_document,
)
from repro.xmltree import XmlElement, parse_element

#: The CI chaos matrix shifts every seed; locally they default to 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Node count for the acceptance-scale test (the paper-scale default can
#: be shrunk locally, e.g. ``REPRO_UPDATE_SCALE=2000`` for quick runs).
ACCEPT_NODES = int(os.environ.get("REPRO_UPDATE_SCALE", "120000"))


def fast_policy(**overrides):
    """A retry policy that never really sleeps."""
    settings = dict(max_attempts=12, deadline_s=None, base_backoff_s=0.0,
                    max_backoff_s=0.0, jitter=0.0, seed=CHAOS_SEED,
                    sleep=lambda _s: None)
    settings.update(overrides)
    return RetryPolicy(**settings)


def store_state(store):
    """Full bit-level fingerprint of a share store (structure + shares)."""
    return {
        node_id: (store.parent_id(node_id),
                  tuple(store.child_ids(node_id)),
                  tuple(store.share_of(node_id).coeffs))
        for node_id in store.node_ids()
    }


def clone_tree(tree):
    """An independent, bit-identical copy of a server share tree."""
    return share_tree_from_dict(share_tree_to_dict(tree))


def outsourced_pair():
    """(client, hosted_tree, reference_clone) with F_p headroom for edits."""
    document = generate_catalog_document(
        CatalogConfig(customers=5, products=4, seed=31))
    ring = choose_fp_ring(len(document.distinct_tags()) + 6)
    client, tree, _ = outsource_document(document, ring=ring,
                                         seed=b"update-protocol")
    return client, tree, clone_tree(tree)


def pick_targets(tree):
    """Deterministic, structurally disjoint targets for the edit script."""
    children = tree.child_ids(tree.root_id)
    assert len(children) >= 3
    rename_target = (tree.child_ids(children[2]) or [children[2]])[0]
    return {
        "insert_parent": children[0],
        "delete": children[1],
        "rename": rename_target,
        "insert_parent2": tree.root_id,
    }


def apply_script(editor, targets):
    """The canonical four-batch edit script used by every comparison."""
    return [
        editor.insert_subtree(targets["insert_parent"],
                              parse_element("<note><flag/></note>")),
        editor.rename_node(targets["rename"], "znote"),
        editor.delete_subtree(targets["delete"]),
        editor.insert_subtree(targets["insert_parent2"], XmlElement("annex")),
    ]


def local_editor(client, tree):
    return UpdatableTree(client.ring, client.mapping, client.share_generator,
                         tree)


class TestUpdateHandler:
    """UpdateRequest batches straight against the serving core."""

    def test_stale_base_version_conflicts(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        root = tree.root_id
        response = server.handle(UpdateRequest("noop", [], {root: 5}))
        assert isinstance(response, ConflictResponse)
        assert response.conflicts == [root]
        # The node still exists, so its *current* version is reported.
        assert response.versions == {root: 0}
        assert server.document().update_log == []

    def test_unknown_base_node_conflicts_without_version(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        response = server.handle(UpdateRequest("noop", [], {987654: 0}))
        assert isinstance(response, ConflictResponse)
        assert response.conflicts == [987654]
        # Absent from versions == the node does not exist any more.
        assert response.versions == {}

    def test_replace_commits_bumps_version_and_logs(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        root = tree.root_id
        coeffs = list(tree.share_of(root).coeffs)
        before = store_state(server.document().store)

        response = server.handle(
            UpdateRequest("touch", [["replace", root, coeffs]], {root: 0}))
        assert isinstance(response, UpdateResponse)
        assert response.applied == 1
        assert response.versions == {root: 1}
        assert server.document().versions == {root: 1}
        assert server.document().update_log == [(None, "touch", 1)]
        # Same coefficients written back: the store is bit-identical.
        assert store_state(server.document().store) == before

        # The base the first batch rode on is stale now.
        rejected = server.handle(
            UpdateRequest("touch", [["replace", root, coeffs]], {root: 0}))
        assert isinstance(rejected, ConflictResponse)
        assert rejected.versions == {root: 1}
        # ... while the fresh base commits and bumps again.
        accepted = server.handle(
            UpdateRequest("touch", [["replace", root, coeffs]], {root: 1}))
        assert isinstance(accepted, UpdateResponse)
        assert accepted.versions == {root: 2}

    def test_remove_shape_mismatch_conflicts_and_applies_nothing(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        target = tree.child_ids(tree.root_id)[0]
        before = store_state(server.document().store)
        response = server.handle(UpdateRequest(
            "delete", [["remove", target, [target, 424242]]], {target: 0}))
        assert isinstance(response, ConflictResponse)
        assert response.conflicts == [target]
        assert response.versions == {target: 0}
        assert store_state(server.document().store) == before
        assert server.document().update_log == []

    def test_committed_batch_replay_is_cached(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        root = tree.root_id
        coeffs = list(tree.share_of(root).coeffs)
        request = UpdateRequest("touch", [["replace", root, coeffs]],
                                {root: 0}).with_request_id("upd-1")
        first = server.handle(request).encode()
        again = server.handle(request).encode()
        assert again == first
        # Applied exactly once: one log entry, one version bump.
        assert server.document().update_log == [("upd-1", "touch", 1)]
        assert server.document().versions == {root: 1}

    def test_conflict_replay_is_cached(self):
        _, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        request = UpdateRequest("noop", [], {tree.root_id: 9}) \
            .with_request_id("upd-2")
        first = server.handle(request).encode()
        assert server.handle(request).encode() == first
        assert server.document().update_log == []

    def test_malformed_ops_rejected_loudly(self):
        with pytest.raises(ValueError):
            UpdateRequest("x", [["frob", 1]], {})
        with pytest.raises(ValueError):
            UpdateRequest("x", [["replace", 1]], {})
        # The same guard fires while decoding a tampered frame.
        valid = UpdateRequest("x", [["replace", 1, [2, 3]]], {1: 0}).encode()
        body = json.loads(valid.decode("utf-8"))
        body["ops"] = [["replace", 1]]
        tampered = json.dumps(body).encode("utf-8")
        with pytest.raises(ProtocolError):
            decode_message(tampered)

    def test_wire_round_trip_is_exact(self):
        request = UpdateRequest(
            "insert",
            [["add", 7, 3, [1, 0, 4]], ["replace", 3, [2]],
             ["remove", 9, [9, 10]]],
            {3: 2, 9: 0}).with_request_id("rt-1")
        decoded = decode_message(request.encode())
        assert isinstance(decoded, UpdateRequest)
        assert decoded.encode() == request.encode()
        assert decoded.ops == request.ops
        assert decoded.base_versions == {3: 2, 9: 0}
        assert decoded.request_id == "rt-1"


class TestRemoteMatchesLocal:
    """One edit script, every transport, bit-identical stores."""

    def _run_remote(self, adapter, client, targets):
        editor = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator)
        reports = apply_script(editor, targets)
        assert editor.rebases == 0       # single writer: no conflicts
        return reports

    def _check(self, server, reference, client, targets, reports):
        expected = apply_script(local_editor(client, reference), targets)
        assert store_state(server.document().store) == store_state(reference)
        log = server.document().update_log
        assert [entry[1] for entry in log] == \
            ["insert", "rename", "delete", "insert"]
        for remote_report, local_report in zip(reports, expected):
            assert remote_report.new_node_ids == local_report.new_node_ids
            assert remote_report.removed_node_ids == \
                local_report.removed_node_ids
            assert remote_report.affected_ancestors == \
                local_report.affected_ancestors

    def test_in_process(self, share_backend):
        client, tree, reference = outsourced_pair()
        targets = pick_targets(tree)
        server = SearchServer(share_backend(tree))
        adapter, _ = connect(server)
        reports = self._run_remote(adapter, client, targets)
        self._check(server, reference, client, targets, reports)

    def test_threaded_socket(self, share_backend):
        client, tree, reference = outsourced_pair()
        targets = pick_targets(tree)
        server = ThreadedSearchServer(SearchServer(share_backend(tree)))
        server.start()
        try:
            host, port = server.address
            adapter, channel = connect_socket(host, port, tree.ring)
            try:
                reports = self._run_remote(adapter, client, targets)
            finally:
                channel.close()
        finally:
            server.stop()
        self._check(server.core, reference, client, targets, reports)

    def test_async_socket(self, share_backend):
        client, tree, reference = outsourced_pair()
        targets = pick_targets(tree)
        core = SearchServer(share_backend(tree))
        handle = start_async_server(core)
        try:
            adapter, channel = connect_socket("127.0.0.1", handle.port,
                                              tree.ring)
            try:
                reports = self._run_remote(adapter, client, targets)
            finally:
                channel.close()
        finally:
            handle.stop()
        self._check(core, reference, client, targets, reports)

    def test_resilient_session_stamps_unique_request_ids(self, share_backend):
        client, tree, reference = outsourced_pair()
        targets = pick_targets(tree)
        server = SearchServer(share_backend(tree))
        adapter, _ = connect_resilient(
            lambda: InstrumentedChannel(server.handle),
            tree.ring, policy=fast_policy())
        reports = self._run_remote(adapter, client, targets)
        self._check(server, reference, client, targets, reports)
        ids = [entry[0] for entry in server.document().update_log]
        assert all(ids), "resilient sessions must stamp idempotency keys"
        assert len(set(ids)) == len(ids)

    def test_v2_session_cannot_update(self):
        client, tree, _ = outsourced_pair()
        server = SearchServer(tree)
        adapter, _ = connect(server, protocol_version=2)
        with pytest.raises(ProtocolError):
            adapter.apply_update(UpdateRequest("noop", [], {}))
        with pytest.raises(ProtocolError):
            RemoteUpdatableTree(adapter, client.mapping,
                                client.share_generator)


class TestAsyncUpdateInterface:
    """The coroutine twin of apply_update."""

    def test_async_update_commit_and_conflict(self):
        _, tree, _ = outsourced_pair()
        handle = start_async_server(SearchServer(tree))
        try:
            async def scenario():
                session = await AsyncServerInterface.open(
                    "127.0.0.1", handle.port, tree.ring)
                try:
                    assert session.protocol_version == 3
                    root = await session.root_id()
                    share = (await session.fetch_polynomials([root]))[root]
                    coeffs = list(share.coeffs)
                    batch = [["replace", root, coeffs]]
                    response = await session.update(
                        UpdateRequest("touch", batch, {root: 0}))
                    assert response.versions == {root: 1}
                    assert response.applied == 1
                    with pytest.raises(UpdateConflictError) as excinfo:
                        await session.update(
                            UpdateRequest("touch", batch, {root: 0}))
                    assert excinfo.value.conflicts == [root]
                    assert excinfo.value.versions == {root: 1}
                    # The session survives the conflict.
                    again = await session.update(
                        UpdateRequest("touch", batch, {root: 1}))
                    assert again.versions == {root: 2}
                finally:
                    await session.close()

            asyncio.run(scenario())
        finally:
            handle.stop()

    def test_async_v2_session_cannot_update(self):
        _, tree, _ = outsourced_pair()
        handle = start_async_server(SearchServer(tree))
        try:
            async def scenario():
                session = await AsyncServerInterface.open(
                    "127.0.0.1", handle.port, tree.ring, protocol_version=2)
                try:
                    with pytest.raises(ProtocolError):
                        await session.update(UpdateRequest("noop", [], {}))
                finally:
                    await session.close()

            asyncio.run(scenario())
        finally:
            handle.stop()


class TestAcceptanceScale:
    """ISSUE acceptance: 120k nodes, real TCP, 5% faults, exact convergence."""

    def test_large_document_over_faulty_tcp_converges(self):
        document = generate_random_document(RandomXmlConfig(
            element_count=ACCEPT_NODES, tag_vocabulary_size=48, tag_skew=1.6,
            max_depth=14, seed=8))
        ring = choose_fp_ring(len(document.distinct_tags()) + 8)
        client, tree, _ = outsource_document(document, ring=ring,
                                             seed=b"accept-seed")
        reference = clone_tree(tree)
        targets = pick_targets(tree)
        expected_reports = apply_script(local_editor(client, reference),
                                        targets)

        server = ThreadedSearchServer(SearchServer(tree))
        server.start()
        try:
            host, port = server.address
            plan = FaultPlan.at_rate(
                0.05, kinds=["reset-after-send", "reset-before-send"],
                seed=CHAOS_SEED + 29)
            adapter, channel = connect_resilient(
                lambda: FaultyChannel(SocketChannel(host, port), plan),
                tree.ring, policy=fast_policy(max_attempts=40))
            try:
                editor = RemoteUpdatableTree(adapter, client.mapping,
                                             client.share_generator)
                reports = apply_script(editor, targets)
            finally:
                channel.close()
            document_state = server.core.document()
        finally:
            server.stop()

        # Faults really flowed at the configured rate ...
        assert plan.fires, "no fault fired over the whole edit session"
        # ... yet the hosted store converged bit-identically.
        assert store_state(document_state.store) == store_state(reference)
        for remote_report, local_report in zip(reports, expected_reports):
            assert remote_report.new_node_ids == local_report.new_node_ids
            assert remote_report.removed_node_ids == \
                local_report.removed_node_ids
        # Every batch applied exactly once despite retries and replays:
        # four committed batches, each with a distinct idempotency key.
        log = document_state.update_log
        assert len(log) == 4
        ids = [entry[0] for entry in log]
        assert all(ids) and len(set(ids)) == len(ids)
