"""Tests for the §3 secure multi-party voting protocols."""

import random

import pytest

from repro.algebra import PrimeField
from repro.errors import ThresholdError
from repro.smc import SecureSummation, SecureVeto, VotingParty


class TestSecureSummation:
    def test_matches_plaintext_sum(self):
        field = PrimeField(101)
        for votes in ([1, 0, 1], [0, 0, 0], [1, 1, 1, 1, 1], [1, 0, 1, 1, 0, 0, 1]):
            protocol = SecureSummation(field, threshold=3 if len(votes) >= 3 else 2,
                                       inputs=votes, rng=random.Random(1))
            assert protocol.run() == sum(votes) % 101
            assert protocol.expected_result() == sum(votes) % 101

    def test_any_threshold_subset_suffices(self):
        field = PrimeField(101)
        protocol = SecureSummation(field, threshold=2, inputs=[1, 0, 1, 1],
                                   rng=random.Random(2))
        assert protocol.run(collaborators=4) == 3

    def test_too_few_collaborators_rejected(self):
        field = PrimeField(101)
        protocol = SecureSummation(field, threshold=3, inputs=[1, 1, 1],
                                   rng=random.Random(3))
        with pytest.raises(ThresholdError):
            protocol.run(collaborators=2)

    def test_transcript_counts_messages(self):
        field = PrimeField(101)
        parties = 5
        protocol = SecureSummation(field, threshold=2, inputs=[1] * parties,
                                   rng=random.Random(4))
        protocol.run()
        transcript = protocol.transcript.as_dict()
        # Phase 1: every party sends one share to every other party.
        assert transcript["messages_sent"] >= parties * (parties - 1)
        assert transcript["rounds"] == 2

    def test_works_modulo_p(self):
        field = PrimeField(5)
        protocol = SecureSummation(field, threshold=2, inputs=[4, 4, 4],
                                   rng=random.Random(5))
        assert protocol.run() == 12 % 5

    def test_invalid_configurations(self):
        field = PrimeField(7)
        with pytest.raises(ThresholdError):
            SecureSummation(field, threshold=0, inputs=[1, 1])
        with pytest.raises(ThresholdError):
            SecureSummation(field, threshold=3, inputs=[1, 1])
        with pytest.raises(ThresholdError):
            SecureSummation(field, threshold=2, inputs=[1] * 7)   # too many parties

    def test_individual_votes_not_revealed_by_shares(self):
        """A single received share is statistically independent of the input."""
        field = PrimeField(101)
        observed = set()
        for seed in range(30):
            protocol = SecureSummation(field, threshold=2, inputs=[1, 0, 0],
                                       rng=random.Random(seed))
            protocol._distribute_inputs()
            observed.add(protocol.parties[1].received_shares[1])
        # The share of party 1's vote seen by party 2 takes many values.
        assert len(observed) > 10


class TestSecureVeto:
    def test_unanimous_yes_passes(self):
        field = PrimeField(101)
        protocol = SecureVeto(field, threshold=1, inputs=[1, 1, 1, 1],
                              rng=random.Random(6))
        assert protocol.run() == 1

    def test_single_veto_blocks(self):
        field = PrimeField(101)
        protocol = SecureVeto(field, threshold=1, inputs=[1, 1, 0, 1],
                              rng=random.Random(7))
        assert protocol.run() == 0

    def test_degree_reduction_needs_enough_parties(self):
        field = PrimeField(101)
        # threshold 3 needs 2*3-1 = 5 parties for degree reduction.
        with pytest.raises(ThresholdError):
            SecureVeto(field, threshold=3, inputs=[1, 1, 1, 1])

    def test_higher_threshold_with_enough_parties(self):
        field = PrimeField(101)
        protocol = SecureVeto(field, threshold=2, inputs=[1, 1, 1],
                              rng=random.Random(8))
        assert protocol.run() == 1
        vetoed = SecureVeto(field, threshold=3, inputs=[1, 1, 0, 1, 1],
                            rng=random.Random(9))
        assert vetoed.run() == 0

    def test_product_of_nonbinary_inputs(self):
        field = PrimeField(101)
        protocol = SecureVeto(field, threshold=2, inputs=[3, 5, 2],
                              rng=random.Random(10))
        assert protocol.run() == 30

    def test_collaborator_minimum(self):
        field = PrimeField(101)
        protocol = SecureVeto(field, threshold=1, inputs=[1, 1, 1],
                              rng=random.Random(9))
        with pytest.raises(ThresholdError):
            protocol.run(collaborators=0)


class TestVotingParty:
    def test_sharing_polynomial_hides_input_at_zero(self):
        field = PrimeField(101)
        party = VotingParty(1, 1, field)
        polynomial = party.sharing_polynomial(degree=2, rng=random.Random(0))
        assert polynomial.evaluate(0) == 1
        assert polynomial.degree <= 2

    def test_local_sum_and_product(self):
        field = PrimeField(11)
        party = VotingParty(2, 0, field)
        party.receive_share(1, 4)
        party.receive_share(2, 5)
        party.receive_share(3, 9)
        assert party.local_sum() == (4 + 5 + 9) % 11
        assert party.local_product() == (4 * 5 * 9) % 11

    def test_invalid_index(self):
        with pytest.raises(Exception):
            VotingParty(0, 1, PrimeField(7))
