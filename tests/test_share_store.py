"""Tests for the pluggable share-store backends (in-memory and SQLite)."""

import pytest

from repro.core import UpdatableTree, outsource_document
from repro.errors import ProtocolError, SharingError
from repro.net import (
    InMemoryShareStore,
    ShareStore,
    SQLiteShareStore,
    as_share_store,
    migrate_share_store,
    open_share_store,
    save_share_tree,
    write_v1_share_store,
)
from repro.xmltree import XmlElement


@pytest.fixture
def sqlite_store(outsourced_catalog, tmp_path):
    _, server_tree, _ = outsourced_catalog
    store = SQLiteShareStore.from_tree(str(tmp_path / "catalog.db"), server_tree)
    yield store
    store.close()


class TestInMemoryShareStore:
    def test_mirrors_tree(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        store = InMemoryShareStore(server_tree)
        assert store.root_id == server_tree.root_id
        assert store.node_count() == server_tree.node_count()
        assert store.node_ids() == server_tree.node_ids()
        assert store.storage_bits() == server_tree.storage_bits()
        node = server_tree.node_ids()[1]
        assert store.share_of(node) == server_tree.share_of(node)
        assert store.child_ids(node) == server_tree.child_ids(node)
        assert store.parent_id(node) == server_tree.parent_id(node)
        assert store.depth_of(node) == server_tree.depth_of(node)
        assert node in store and -1 not in store

    def test_as_share_store(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        store = as_share_store(server_tree)
        assert isinstance(store, InMemoryShareStore)
        assert as_share_store(store) is store
        with pytest.raises(ProtocolError):
            as_share_store("nonsense")


class TestSQLiteShareStore:
    def test_round_trips_structure_and_shares(self, outsourced_catalog,
                                              sqlite_store):
        _, server_tree, _ = outsourced_catalog
        assert sqlite_store.root_id == server_tree.root_id
        assert sqlite_store.node_ids() == server_tree.node_ids()
        for node_id in server_tree.node_ids():
            assert sqlite_store.share_of(node_id) == server_tree.share_of(node_id)
            assert sqlite_store.child_ids(node_id) == server_tree.child_ids(node_id)
            assert sqlite_store.parent_id(node_id) == server_tree.parent_id(node_id)
        assert sqlite_store.storage_bits() == server_tree.storage_bits()

    def test_lazy_loading(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "lazy.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        store = SQLiteShareStore(path)
        # Opening materialises nothing; shares load on demand.
        assert store.cached_share_count() == 0
        store.share_of(server_tree.root_id)
        assert store.cached_share_count() == 1
        store.close()

    def test_cache_eviction_bounded(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "small-cache.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        store = SQLiteShareStore(path, cache_size=4)
        for node_id in server_tree.node_ids():
            store.share_of(node_id)
        assert store.cached_share_count() == 4
        store.close()

    def test_cache_bounded_during_inserts(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        store = SQLiteShareStore(str(tmp_path / "bulk.db"), ring=server_tree.ring,
                                 cache_size=4)
        for node_id in server_tree.node_ids():
            store.add_node(node_id, server_tree.parent_id(node_id),
                           server_tree.share_of(node_id))
        assert store.cached_share_count() == 4
        store.close()

    def test_queries_identical_to_in_memory(self, outsourced_catalog,
                                            sqlite_store):
        client, server_tree, _ = outsourced_catalog
        for tag in ("customer", "product", "location"):
            assert client.lookup(sqlite_store, tag).matches == \
                client.lookup(server_tree, tag).matches
        assert client.xpath(sqlite_store, "//customer/order").matches == \
            client.xpath(server_tree, "//customer/order").matches

    def test_int_ring_supported(self, paper_document, tmp_path):
        from repro.core import choose_int_ring

        client, server_tree, _ = outsource_document(
            paper_document, ring=choose_int_ring(2), seed=b"store-int")
        store = SQLiteShareStore.from_tree(str(tmp_path / "int.db"), server_tree)
        assert client.lookup(store, "client").matches == \
            client.lookup(server_tree, "client").matches
        store.close()

    def test_reopen_after_close(self, outsourced_catalog, tmp_path):
        client, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "durable.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        store = SQLiteShareStore(path)
        assert client.lookup(store, "customer").matches == \
            client.lookup(server_tree, "customer").matches
        store.close()

    def test_ring_mismatch_rejected(self, outsourced_catalog, tmp_path):
        from repro.algebra import FpQuotientRing

        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "ring.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        with pytest.raises(ProtocolError):
            SQLiteShareStore(path, ring=FpQuotientRing(5))

    def test_unknown_format_rejected(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "format.db")
        store = SQLiteShareStore.from_tree(path, server_tree)
        with store._conn:
            store._set_meta("format", "share-store-sqlite-v99")
        store.close()
        with pytest.raises(ProtocolError):
            SQLiteShareStore(path)

    def test_missing_store_requires_ring(self, tmp_path):
        with pytest.raises(ProtocolError):
            SQLiteShareStore(str(tmp_path / "fresh.db"))

    def test_write_protocol_enforced(self, outsourced_catalog, sqlite_store):
        _, server_tree, _ = outsourced_catalog
        share = sqlite_store.share_of(sqlite_store.root_id)
        with pytest.raises(SharingError):
            sqlite_store.add_node(sqlite_store.root_id, None, share)
        with pytest.raises(SharingError):
            sqlite_store.add_node(10 ** 6, 10 ** 6 + 1, share)
        with pytest.raises(SharingError):
            sqlite_store.replace_share(10 ** 6, share)
        with pytest.raises(SharingError):
            sqlite_store.remove_subtree(sqlite_store.root_id)

    def test_max_node_id(self, outsourced_catalog, sqlite_store):
        _, server_tree, _ = outsourced_catalog
        assert sqlite_store.max_node_id() == max(server_tree.node_ids())
        assert server_tree.max_node_id() == max(server_tree.node_ids())
        assert InMemoryShareStore(server_tree).max_node_id() == \
            max(server_tree.node_ids())

    def test_evaluate_many_batched_matches_generic(self, outsourced_catalog,
                                                   tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "batched.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        store = SQLiteShareStore(path, cache_size=8)
        node_ids = server_tree.node_ids()
        for point in (1, 3, 5):
            # Cold cache, warm cache and the generic per-node fallback all
            # agree with the in-memory tree.
            assert store.evaluate_many(node_ids, point) == \
                server_tree.evaluate_many(node_ids, point)
            assert store.evaluate_many(node_ids, point) == \
                ShareStore.evaluate_many(store, node_ids, point)
        assert store.cached_share_count() == 8
        with pytest.raises(SharingError):
            store.evaluate_many(node_ids + [10 ** 6], 3)
        store.close()

    def test_evaluate_many_spans_parameter_chunks(self, outsourced_catalog,
                                                  tmp_path, monkeypatch):
        from repro.net import store as store_module

        _, server_tree, _ = outsourced_catalog
        monkeypatch.setattr(store_module, "_SQL_CHUNK", 7)
        store = SQLiteShareStore.from_tree(str(tmp_path / "chunks.db"),
                                           server_tree, cache_size=0)
        node_ids = server_tree.node_ids()
        assert store.evaluate_many(node_ids, 2) == \
            server_tree.evaluate_many(node_ids, 2)
        store.close()

    def test_overflow_pages_round_trip(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        store = SQLiteShareStore.from_tree(str(tmp_path / "overflow.db"),
                                           server_tree, page_bytes=16)
        for node_id in server_tree.node_ids():
            assert store.share_of(node_id) == server_tree.share_of(node_id)
        store.close()
        reopened = SQLiteShareStore(str(tmp_path / "overflow.db"),
                                    cache_size=0)
        assert reopened.evaluate_many(server_tree.node_ids(), 3) == \
            server_tree.evaluate_many(server_tree.node_ids(), 3)
        reopened.close()


class TestStoreTransactions:
    def test_batch_applies_on_clean_exit(self, outsourced_catalog, sqlite_store):
        _, server_tree, _ = outsourced_catalog
        new_id = sqlite_store.max_node_id() + 1
        share = sqlite_store.share_of(sqlite_store.root_id)
        with sqlite_store.transaction() as txn:
            txn.add_node(new_id, sqlite_store.root_id, share)
            txn.replace_share(new_id, share)
            # Buffered: the store itself is untouched until exit.
            assert new_id not in sqlite_store
        assert new_id in sqlite_store
        assert sqlite_store.child_ids(sqlite_store.root_id)[-1] == new_id

    def test_batch_discarded_on_exception(self, outsourced_catalog,
                                          sqlite_store):
        _, server_tree, _ = outsourced_catalog
        new_id = sqlite_store.max_node_id() + 1
        share = sqlite_store.share_of(sqlite_store.root_id)
        with pytest.raises(RuntimeError):
            with sqlite_store.transaction() as txn:
                txn.add_node(new_id, sqlite_store.root_id, share)
                raise RuntimeError("caller changed its mind")
        assert new_id not in sqlite_store

    def test_recording_validates_against_pre_state(self, outsourced_catalog,
                                                   sqlite_store):
        _, server_tree, _ = outsourced_catalog
        root = sqlite_store.root_id
        share = sqlite_store.share_of(root)
        victim = sqlite_store.child_ids(root)[0]
        with sqlite_store.transaction() as txn:
            with pytest.raises(SharingError):
                txn.add_node(root, None, share)          # duplicate root
            with pytest.raises(SharingError):
                txn.replace_share(10 ** 6, share)        # unknown node
            with pytest.raises(SharingError):
                txn.remove_subtree(root)                 # root removal
            removed = txn.remove_subtree(victim)
            assert victim in removed
            with pytest.raises(SharingError):
                txn.replace_share(victim, share)         # removed earlier
            with pytest.raises(SharingError):
                txn.add_node(sqlite_store.max_node_id() + 1, victim, share)
        assert victim not in sqlite_store

    def test_second_root_in_one_batch_rejected(self, outsourced_catalog,
                                               tmp_path):
        _, server_tree, _ = outsourced_catalog
        store = SQLiteShareStore(str(tmp_path / "fresh.db"),
                                 ring=server_tree.ring)
        share = server_tree.share_of(server_tree.root_id)
        with store.transaction() as txn:
            txn.add_node(1, None, share)
            with pytest.raises(SharingError, match="already has a root"):
                txn.add_node(2, None, share)
            txn.add_node(2, 1, share)
        assert store.root_id == 1
        store.close()

    def test_in_memory_transaction_writes_through(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        store = as_share_store(server_tree)
        new_id = server_tree.max_node_id() + 1
        with store.transaction() as txn:
            txn.add_node(new_id, server_tree.root_id,
                         server_tree.share_of(server_tree.root_id))
        assert new_id in server_tree


class TestMigration:
    def test_v1_file_rejected_with_migration_hint(self, outsourced_catalog,
                                                  tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "legacy.db")
        write_v1_share_store(path, server_tree)
        with pytest.raises(ProtocolError, match="migrate-store"):
            SQLiteShareStore(path)
        with pytest.raises(ProtocolError, match="migrate-store"):
            open_share_store(path)

    def test_migration_is_lossless(self, outsourced_catalog, tmp_path):
        client, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "legacy.db")
        write_v1_share_store(path, server_tree)
        stats = migrate_share_store(path)
        assert stats["nodes"] == server_tree.node_count()
        store = SQLiteShareStore(path)
        assert store.node_ids() == server_tree.node_ids()
        for node_id in server_tree.node_ids():
            assert store.share_of(node_id) == server_tree.share_of(node_id)
            assert store.child_ids(node_id) == server_tree.child_ids(node_id)
        assert client.lookup(store, "customer").matches == \
            client.lookup(server_tree, "customer").matches
        store.close()

    def test_migration_idempotent_and_guarded(self, outsourced_catalog,
                                              tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "legacy.db")
        write_v1_share_store(path, server_tree)
        first = migrate_share_store(path)
        second = migrate_share_store(path)     # already v2: a no-op
        assert second["before_bytes"] == second["after_bytes"]
        assert first["nodes"] == second["nodes"]
        json_path = tmp_path / "tree.json"
        save_share_tree(server_tree, str(json_path))
        with pytest.raises(ProtocolError):
            migrate_share_store(str(json_path))

    def test_foreign_sqlite_database_rejected(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "foreign.db")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(ProtocolError, match="not a share store"):
            migrate_share_store(path)


@pytest.fixture
def roomy_catalog(catalog_document):
    """An outsourced catalog whose ring has headroom for new tags."""
    from repro.core import choose_fp_ring

    ring = choose_fp_ring(len(catalog_document.distinct_tags()) + 4)
    return outsource_document(catalog_document, ring=ring, seed=b"store-updates")


class TestUpdatesAgainstStores:
    def _editor(self, client, store):
        return UpdatableTree(client.ring, client.mapping, client.share_generator,
                             store)

    def test_updates_persist_in_sqlite(self, roomy_catalog, tmp_path):
        client, server_tree, _ = roomy_catalog
        path = str(tmp_path / "updates.db")
        store = SQLiteShareStore.from_tree(path, server_tree)

        subtree = XmlElement("annex")
        subtree.add("shelf")
        report = self._editor(client, store).insert_subtree(
            server_tree.root_id, subtree)
        assert report.new_node_ids
        store.close()

        reopened = SQLiteShareStore(path)
        assert client.lookup(reopened, "annex").matches == report.new_node_ids[:1]
        # The same edit against the in-memory tree gives identical results.
        self._editor(client, server_tree).insert_subtree(server_tree.root_id,
                                                         XmlElement("annex"))
        reopened.close()

    def test_delete_and_rename_on_sqlite(self, roomy_catalog, tmp_path):
        client, server_tree, _ = roomy_catalog
        store = SQLiteShareStore.from_tree(str(tmp_path / "edit.db"), server_tree)
        editor = self._editor(client, store)

        victim = client.lookup(store, "customer").matches[0]
        removed = editor.delete_subtree(victim).removed_node_ids
        assert victim in removed
        assert victim not in store
        assert victim not in client.lookup(store, "customer").matches

        target = client.lookup(store, "customer").matches[0]
        editor.rename_node(target, "vip")
        assert target in client.lookup(store, "vip").matches
        store.close()


class TestOpenShareStore:
    def test_sniffs_sqlite(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "sniff.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        store = open_share_store(path)
        assert isinstance(store, SQLiteShareStore)
        store.close()

    def test_sniffs_json(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "sniff.json")
        save_share_tree(server_tree, path)
        store = open_share_store(path)
        assert isinstance(store, InMemoryShareStore)
        assert store.node_count() == server_tree.node_count()

    def test_empty_file_rejected_loudly(self, tmp_path):
        path = tmp_path / "empty.db"
        path.write_bytes(b"")
        with pytest.raises(ProtocolError, match="empty"):
            open_share_store(str(path))

    def test_truncated_sqlite_header_rejected_loudly(self, tmp_path):
        path = tmp_path / "truncated.db"
        path.write_bytes(b"SQLite f")       # a partial magic header
        with pytest.raises(ProtocolError, match="truncated"):
            open_share_store(str(path))

    def test_garbage_rejected_with_sniffed_header(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x89PNG\r\n\x1a\n not a store at all")
        with pytest.raises(ProtocolError) as excinfo:
            open_share_store(str(path))
        assert "garbage.bin" in str(excinfo.value)
        assert "PNG" in str(excinfo.value)

    def test_truncated_json_rejected_loudly(self, outsourced_catalog,
                                            tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = tmp_path / "torn.json"
        save_share_tree(server_tree, str(path))
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ProtocolError, match="torn.json"):
            open_share_store(str(path))


class TestAtomicSave:
    def test_no_temp_files_left(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = tmp_path / "server.json"
        size = save_share_tree(server_tree, str(path))
        assert size == path.stat().st_size
        assert [p.name for p in tmp_path.iterdir()] == ["server.json"]

    def test_overwrite_is_atomic_replace(self, outsourced_catalog, tmp_path):
        from repro.net import load_share_tree

        _, server_tree, _ = outsourced_catalog
        path = tmp_path / "server.json"
        save_share_tree(server_tree, str(path))
        first_inode = path.stat().st_ino
        save_share_tree(server_tree, str(path))
        # A fresh inode replaced the old file; the content stays loadable.
        assert path.stat().st_ino != first_inode
        assert load_share_tree(str(path)).node_count() == server_tree.node_count()

    def test_failed_write_preserves_existing_file(self, outsourced_catalog,
                                                  tmp_path, monkeypatch):
        from repro.net import load_share_tree, storage

        _, server_tree, _ = outsourced_catalog
        path = tmp_path / "server.json"
        save_share_tree(server_tree, str(path))
        original = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(storage.os, "replace", explode)
        with pytest.raises(OSError):
            save_share_tree(server_tree, str(path))
        monkeypatch.undo()
        # The original file is untouched and no temp debris remains.
        assert path.read_bytes() == original
        assert [p.name for p in tmp_path.iterdir()] == ["server.json"]
        assert load_share_tree(str(path)).node_count() == server_tree.node_count()
