"""Tests for repro.algebra.modint."""

import pytest

from repro.algebra.modint import (
    crt,
    crt_pair,
    egcd,
    int_nth_root,
    is_perfect_power,
    legendre_symbol,
    modinv,
    modpow,
    tonelli_shanks,
)


class TestEgcd:
    def test_coprime(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == g

    def test_identity_holds_for_many_pairs(self):
        for a in range(-20, 21):
            for b in range(-20, 21):
                g, x, y = egcd(a, b)
                assert a * x + b * y == g
                assert g >= 0

    def test_zero_cases(self):
        assert egcd(0, 0)[0] == 0
        assert egcd(0, 7)[0] == 7
        assert egcd(7, 0)[0] == 7


class TestModinv:
    def test_inverse_property(self):
        for a in range(1, 17):
            inv = modinv(a, 17)
            assert a * inv % 17 == 1

    def test_negative_argument(self):
        assert (-3) * modinv(-3, 11) % 11 == 1

    def test_not_invertible(self):
        with pytest.raises(ZeroDivisionError):
            modinv(6, 12)

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            modinv(3, 0)


class TestModpow:
    def test_matches_builtin(self):
        assert modpow(7, 13, 101) == pow(7, 13, 101)

    def test_negative_exponent(self):
        assert modpow(3, -1, 11) == modinv(3, 11)
        assert modpow(3, -2, 11) == pow(modinv(3, 11), 2, 11)

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            modpow(2, 3, 0)


class TestCrt:
    def test_pair(self):
        r, m = crt_pair(2, 3, 3, 5)
        assert m == 15
        assert r % 3 == 2 and r % 5 == 3

    def test_list(self):
        r, m = crt([1, 2, 3], [5, 7, 9])
        assert m == 315
        assert r % 5 == 1 and r % 7 == 2 and r % 9 == 3

    def test_non_coprime_compatible(self):
        r, m = crt_pair(2, 4, 4, 6)
        assert r % 4 == 2 and r % 6 == 4

    def test_non_coprime_incompatible(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 2, 6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crt([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crt([1], [3, 5])


class TestRoots:
    def test_int_nth_root_exact(self):
        assert int_nth_root(27, 3) == 3
        assert int_nth_root(10 ** 18, 2) == 10 ** 9

    def test_int_nth_root_floor(self):
        assert int_nth_root(26, 3) == 2
        assert int_nth_root(80, 4) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            int_nth_root(-1, 2)
        with pytest.raises(ValueError):
            int_nth_root(4, 0)

    def test_perfect_power(self):
        assert is_perfect_power(64) == (2, 6)
        assert is_perfect_power(3 ** 5) == (3, 5)
        assert is_perfect_power(97) == (97, 1)
        assert is_perfect_power(1) == (1, 1)


class TestQuadraticResidues:
    def test_legendre(self):
        assert legendre_symbol(4, 7) == 1
        assert legendre_symbol(3, 7) == -1
        assert legendre_symbol(0, 7) == 0

    def test_tonelli_shanks_roundtrip(self):
        p = 101
        for a in range(1, p):
            if legendre_symbol(a, p) == 1:
                root = tonelli_shanks(a, p)
                assert root * root % p == a

    def test_tonelli_nonresidue_rejected(self):
        with pytest.raises(ValueError):
            tonelli_shanks(3, 7)

    def test_tonelli_p_mod_1_branch(self):
        # p = 13 is 1 mod 4, exercising the general branch.
        assert tonelli_shanks(4, 13) in (2, 11)
