"""Tests for the generic dense polynomial type."""

import random

import pytest

from repro.algebra import Polynomial, PrimeField, ZZ, is_irreducible_mod_p, poly_gcd


class TestConstruction:
    def test_trailing_zeros_are_stripped(self):
        assert Polynomial([1, 2, 0, 0]).coeffs == (1, 2)

    def test_zero_polynomial(self):
        zero = Polynomial.zero()
        assert zero.is_zero()
        assert zero.degree == -1
        assert not zero

    def test_constant_and_x(self):
        assert Polynomial.constant(7).coeffs == (7,)
        assert Polynomial.x().coeffs == (0, 1)

    def test_monomial(self):
        assert Polynomial.monomial(3, 5).coeffs == (0, 0, 0, 5)
        with pytest.raises(ValueError):
            Polynomial.monomial(-1)

    def test_from_roots_expands_product(self):
        poly = Polynomial.from_roots([2, 4])
        assert poly.coeffs == (8, -6, 1)          # (x-2)(x-4) = x^2 - 6x + 8

    def test_linear_root(self):
        assert Polynomial.linear_root(4).coeffs == (-4, 1)

    def test_field_coefficients_reduced(self):
        field = PrimeField(5)
        poly = Polynomial([7, -1], field)
        assert poly.coeffs == (2, 4)


class TestArithmetic:
    def test_addition_and_subtraction(self):
        a = Polynomial([1, 2, 3])
        b = Polynomial([4, 5])
        assert (a + b).coeffs == (5, 7, 3)
        assert (a - b).coeffs == (-3, -3, 3)
        assert (a - a).is_zero()

    def test_negation(self):
        assert (-Polynomial([1, -2])).coeffs == (-1, 2)

    def test_multiplication(self):
        a = Polynomial([1, 1])                     # x + 1
        b = Polynomial([-1, 1])                    # x - 1
        assert (a * b).coeffs == (-1, 0, 1)        # x^2 - 1

    def test_scalar_multiplication(self):
        assert (Polynomial([1, 2]) * 3).coeffs == (3, 6)
        assert (3 * Polynomial([1, 2])).coeffs == (3, 6)

    def test_power(self):
        assert (Polynomial([1, 1]) ** 2).coeffs == (1, 2, 1)
        assert (Polynomial([1, 1]) ** 0) == Polynomial.one()
        with pytest.raises(ValueError):
            Polynomial([1, 1]) ** -1

    def test_mixed_ring_operations_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([1], PrimeField(5)) + Polynomial([1], ZZ)

    def test_shift(self):
        assert Polynomial([1, 2]).shift(2).coeffs == (0, 0, 1, 2)
        with pytest.raises(ValueError):
            Polynomial([1]).shift(-1)


class TestDivision:
    def test_divmod_over_field(self):
        field = PrimeField(7)
        a = Polynomial([3, 0, 1, 2], field)
        b = Polynomial([1, 1], field)
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_divmod_monic_over_integers(self):
        a = Polynomial([5, 0, 0, 1])               # x^3 + 5
        r = a % Polynomial([1, 0, 1])              # mod x^2 + 1
        assert r.coeffs == (5, -1)                 # x^3 = -x mod x^2+1

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Polynomial([1]).divmod(Polynomial.zero())

    def test_non_monic_integer_division_fails(self):
        with pytest.raises(ZeroDivisionError):
            Polynomial([1, 0, 1]).divmod(Polynomial([1, 2]))

    def test_exhaustive_divmod_small_field(self):
        field = PrimeField(5)
        rng = random.Random(0)
        for _ in range(50):
            a = Polynomial.random(5, field, rng)
            b = Polynomial.random(3, field, rng)
            if b.is_zero():
                continue
            q, r = a.divmod(b)
            assert q * b + r == a


class TestEvaluationAndCalculus:
    def test_evaluate(self):
        poly = Polynomial([1, 2, 3])               # 1 + 2x + 3x^2
        assert poly.evaluate(0) == 1
        assert poly.evaluate(2) == 1 + 4 + 12
        assert poly(-1) == 1 - 2 + 3

    def test_evaluate_in_field(self):
        field = PrimeField(5)
        poly = Polynomial([3, 4, 1], field)        # figure 2(a) 'client'
        assert poly.evaluate(2) == 0               # (2-2)(2-4) = 0 mod 5

    def test_derivative(self):
        assert Polynomial([5, 3, 2]).derivative().coeffs == (3, 4)
        assert Polynomial.constant(7).derivative().is_zero()

    def test_compose(self):
        outer = Polynomial([0, 0, 1])              # x^2
        inner = Polynomial([1, 1])                 # x + 1
        assert outer.compose(inner).coeffs == (1, 2, 1)

    def test_roots_in_field(self):
        field = PrimeField(5)
        poly = Polynomial.from_roots([2, 4], field)
        assert poly.roots_in_field() == [2, 4]

    def test_roots_requires_finite_field(self):
        with pytest.raises(TypeError):
            Polynomial([1, 1]).roots_in_field()


class TestMisc:
    def test_coefficient_access(self):
        poly = Polynomial([1, 2])
        assert poly.coefficient(5) == 0
        assert poly.constant_term == 1
        assert poly.leading_coefficient == 2
        with pytest.raises(ValueError):
            poly.coefficient(-1)

    def test_monic_detection(self):
        assert Polynomial([3, 1]).is_monic()
        assert not Polynomial([1, 3]).is_monic()
        assert not Polynomial.zero().is_monic()

    def test_storage_bits_positive(self):
        assert Polynomial([1, 2, 3]).storage_bits() > 0
        assert Polynomial.zero().storage_bits() > 0

    def test_map_ring(self):
        poly = Polynomial([7, -1]).map_ring(PrimeField(5))
        assert poly.coeffs == (2, 4)

    def test_pretty_printing_matches_paper_style(self):
        field = PrimeField(5)
        assert Polynomial([3, 3, 3, 3], field).pretty() == "3x^3 + 3x^2 + 3x + 3"
        assert Polynomial([45, 265]).pretty() == "265x + 45"
        assert Polynomial([7, -6]).pretty() == "-6x + 7"
        assert Polynomial.zero().pretty() == "0"
        assert Polynomial([0, 1]).pretty() == "x"

    def test_equality_and_hash(self):
        assert Polynomial([1, 2]) == Polynomial([1, 2])
        assert Polynomial([1, 2]) != Polynomial([1, 2], PrimeField(5))
        assert hash(Polynomial([1, 2])) == hash(Polynomial([1, 2]))

    def test_random_respects_degree_bound(self):
        rng = random.Random(9)
        for _ in range(20):
            poly = Polynomial.random(4, PrimeField(7), rng)
            assert poly.degree < 4


class TestGcdAndIrreducibility:
    def test_gcd_of_products(self):
        field = PrimeField(7)
        a = Polynomial.from_roots([1, 2, 3], field)
        b = Polynomial.from_roots([2, 3, 4], field)
        gcd = poly_gcd(a, b)
        assert gcd == Polynomial.from_roots([2, 3], field)

    def test_gcd_requires_field(self):
        with pytest.raises(TypeError):
            poly_gcd(Polynomial([1, 1]), Polynomial([1, 1]))

    def test_gcd_with_zero(self):
        field = PrimeField(5)
        a = Polynomial([1, 1], field)
        assert poly_gcd(a, Polynomial.zero(field)) == a

    def test_irreducibility(self):
        assert is_irreducible_mod_p(Polynomial([1, 0, 1]), 3)       # x^2+1 mod 3
        assert not is_irreducible_mod_p(Polynomial([1, 0, 1]), 5)   # (x-2)(x-3) mod 5
        assert is_irreducible_mod_p(Polynomial([1, 1]), 7)          # degree 1
        assert not is_irreducible_mod_p(Polynomial([4]), 7)         # constants never

    def test_irreducibility_degree_three(self):
        # x^3 + x + 1 is irreducible over F_2 (no roots, degree 3).
        assert is_irreducible_mod_p(Polynomial([1, 1, 0, 1]), 2)
        # x^3 - 1 factors.
        assert not is_irreducible_mod_p(Polynomial([-1, 0, 0, 1]), 7)
