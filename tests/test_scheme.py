"""Tests for the high-level facade (ring choice, outsourcing, client state)."""

import pytest

from repro.algebra import FpQuotientRing, IntQuotientRing, is_prime
from repro.core import (
    ClientContext,
    TagMapping,
    VerificationMode,
    choose_fp_ring,
    choose_int_ring,
    outsource_document,
)
from repro.errors import MappingCapacityError
from repro.workloads import figure1_document, generate_catalog_document


class TestRingChoice:
    def test_prime_large_enough_for_tags(self):
        document = generate_catalog_document()
        ring = choose_fp_ring(document)
        assert is_prime(ring.p)
        assert ring.p >= len(document.distinct_tags()) + 2

    def test_accepts_tag_count_directly(self):
        assert choose_fp_ring(3, strict=False, minimum_prime=2).p == 5
        assert choose_fp_ring(3, strict=True, minimum_prime=2).p == 5
        assert choose_fp_ring(10).p >= 12

    def test_rejects_empty_vocabulary(self):
        with pytest.raises(MappingCapacityError):
            choose_fp_ring(0)

    def test_int_ring_default_modulus(self):
        ring = choose_int_ring()
        assert isinstance(ring, IntQuotientRing)
        assert ring.degree_bound == 2
        assert choose_int_ring(3).degree_bound == 3


class TestOutsourcing:
    def test_returns_consistent_triple(self, paper_document):
        client, server_tree, tree = outsource_document(paper_document, seed=b"s")
        assert server_tree.node_count() == len(tree) == paper_document.size()
        assert isinstance(client.ring, FpQuotientRing)
        # Shares recombine to the encoded polynomials.
        for node in tree.iter_preorder():
            combined = client.ring.add(client.share_generator.share_for(node.node_id),
                                       server_tree.share_of(node.node_id))
            assert combined == node.polynomial

    def test_mapping_generated_when_absent(self, paper_document):
        client, _, _ = outsource_document(paper_document, seed=b"s")
        assert set(client.mapping.tags()) == set(paper_document.distinct_tags())

    def test_existing_mapping_extended(self, paper_document):
        mapping = TagMapping({"customers": 1})
        client, _, _ = outsource_document(paper_document, mapping=mapping, seed=b"s")
        assert "client" in client.mapping and "name" in client.mapping

    def test_random_mapping_with_rng(self, paper_document):
        import random

        client, _, _ = outsource_document(paper_document, seed=b"s",
                                          mapping_rng=random.Random(3))
        values = set(client.mapping.as_dict().values())
        assert len(values) == 3

    def test_strict_mode_avoids_p_minus_one(self, catalog_document):
        client, _, _ = outsource_document(catalog_document, seed=b"s", strict=True)
        assert isinstance(client.ring, FpQuotientRing)
        assert client.ring.p - 1 not in client.mapping.values()

    def test_random_seed_generated_when_absent(self, paper_document):
        client_a, _, _ = outsource_document(paper_document)
        client_b, _, _ = outsource_document(paper_document)
        assert client_a.prg.seed != client_b.prg.seed


class TestClientContext:
    def test_secret_state_roundtrip(self, paper_document):
        client, server_tree, _ = outsource_document(paper_document, seed=b"persist")
        restored = ClientContext.from_secret_state(client.ring, client.secret_state(),
                                                   verification=VerificationMode.FULL)
        # The restored client answers queries identically.
        assert restored.lookup(server_tree, "client").matches == \
            client.lookup(server_tree, "client").matches

    def test_tag_of_and_tag_path_of(self, paper_document):
        client, server_tree, _ = outsource_document(paper_document, seed=b"paths")
        assert client.tag_of(server_tree, 0) == "customers"
        assert client.tag_path_of(server_tree, 2) == "customers/client/name"
        assert client.tag_path_of(server_tree, 0) == "customers"

    def test_tag_path_via_remote_adapter(self, paper_document):
        from repro.net import connect_in_process

        client, server_tree, _ = outsource_document(paper_document, seed=b"paths")
        adapter, _, _ = connect_in_process(server_tree)
        assert client.tag_path_of(adapter, 4) == "customers/client/name"

    def test_adapt_accepts_adapter_and_tree(self, paper_document):
        from repro.core import LocalServerAdapter

        client, server_tree, _ = outsource_document(paper_document, seed=b"adapt")
        adapter = LocalServerAdapter(server_tree)
        assert ClientContext.adapt(adapter) is adapter
        assert ClientContext.adapt(server_tree).share_tree is server_tree

    def test_default_verification_mode_is_used(self, paper_document):
        client, server_tree, _ = outsource_document(
            paper_document, seed=b"mode", verification=VerificationMode.NONE)
        engine = client.engine(ClientContext.adapt(server_tree))
        assert engine.verification is VerificationMode.NONE
