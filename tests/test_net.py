"""Tests for the instrumented transport: messages, channel, server, client
adapter and persistence."""

import json

import pytest

from repro.core import VerificationMode, outsource_document
from repro.errors import ProtocolError
from repro.net import (
    ChannelStats,
    InstrumentedChannel,
    InMemoryServerStore,
    LatencyModel,
    RemoteServerAdapter,
    SearchServer,
    connect_in_process,
    decode_message,
    load_share_tree,
    ring_from_dict,
    ring_to_dict,
    save_share_tree,
    share_tree_from_dict,
    share_tree_to_dict,
)
from repro.net.messages import (
    Acknowledgement,
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    PruneNotice,
    StructureRequest,
    StructureResponse,
)


class TestMessages:
    @pytest.mark.parametrize("message", [
        StructureRequest(),
        StructureResponse(0, 17),
        ChildrenRequest([1, 2, 3]),
        ChildrenResponse({0: [1, 2], 2: []}),
        EvaluateRequest([0, 1], 4),
        EvaluateResponse({0: 3, 1: 0}),
        FetchPolynomialsRequest([5]),
        FetchPolynomialsResponse({5: [1, 2, 3, 4]}),
        FetchConstantsRequest([0, 1]),
        FetchConstantsResponse({0: -12, 1: 7}),
        PruneNotice([9, 10]),
        Acknowledgement(),
        BlobRequest(),
        BlobResponse(b"\x00\x01\xffbinary"),
    ])
    def test_encode_decode_roundtrip(self, message):
        decoded = decode_message(message.encode())
        assert type(decoded) is type(message)
        assert decoded.payload() == message.payload()

    def test_byte_size_matches_encoding(self):
        message = EvaluateRequest([1, 2, 3], 9)
        assert message.byte_size() == len(message.encode())

    def test_malformed_messages_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json at all")
        with pytest.raises(ProtocolError):
            decode_message(json.dumps({"kind": "martian"}).encode())

    def test_negative_coefficients_survive(self):
        response = FetchPolynomialsResponse({0: [-45, -265]})
        assert decode_message(response.encode()).coefficients == {0: [-45, -265]}


class TestChannel:
    def test_counts_bytes_and_round_trips(self):
        channel = InstrumentedChannel(lambda message: Acknowledgement())
        channel.request(PruneNotice([1, 2, 3]))
        channel.request(PruneNotice([4]))
        stats = channel.stats
        assert stats.requests == stats.responses == 2
        assert stats.round_trips == 2
        assert stats.bytes_to_server > stats.bytes_to_client > 0
        assert stats.total_bytes == stats.bytes_to_server + stats.bytes_to_client
        assert channel.transcript == [("prune", "ack"), ("prune", "ack")]

    def test_reset(self):
        channel = InstrumentedChannel(lambda message: Acknowledgement())
        channel.request(StructureRequest())
        channel.reset()
        assert channel.stats.total_bytes == 0
        assert channel.transcript == []

    def test_handler_must_return_message(self):
        channel = InstrumentedChannel(lambda message: "nope")
        with pytest.raises(ProtocolError):
            channel.request(StructureRequest())

    def test_latency_model(self):
        model = LatencyModel(latency_s=0.05, bandwidth_bytes_per_s=1000)
        stats = ChannelStats()
        stats.bytes_to_server = 500
        stats.bytes_to_client = 500
        stats.responses = 2
        assert model.simulated_seconds(stats) == pytest.approx(2 * 0.05 * 2 + 1.0)
        with pytest.raises(ValueError):
            LatencyModel(latency_s=-1)
        channel = InstrumentedChannel(lambda m: Acknowledgement(), latency_model=model)
        channel.request(StructureRequest())
        assert channel.simulated_seconds() > 0
        assert InstrumentedChannel(lambda m: Acknowledgement()).simulated_seconds() == 0.0


class TestSearchServer:
    def test_handles_all_request_kinds(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree, encrypted_blob=b"blob")
        structure = server.handle(StructureRequest())
        assert structure.node_count == server_tree.node_count()
        children = server.handle(ChildrenRequest([structure.root_id]))
        assert children.children[structure.root_id]
        evaluations = server.handle(EvaluateRequest([0, 1], 3))
        assert set(evaluations.values) == {0, 1}
        polys = server.handle(FetchPolynomialsRequest([0]))
        assert len(polys.coefficients[0]) == server_tree.ring.degree_bound
        constants = server.handle(FetchConstantsRequest([0]))
        assert 0 in constants.constants
        assert isinstance(server.handle(PruneNotice([1])), Acknowledgement)
        assert server.handle(BlobRequest()).blob == b"blob"
        assert server.storage_bits() > 0

    def test_observations_recorded(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        server.handle(EvaluateRequest([0, 1, 2], 5))
        server.handle(PruneNotice([2]))
        observed = server.observations.as_dict()
        assert observed["distinct_points_seen"] == 1
        assert observed["evaluation_requests"] == 3
        assert observed["pruned_nodes"] == 1
        assert observed["requests_handled"] == 2

    def test_blob_without_configuration_rejected(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        with pytest.raises(ProtocolError):
            SearchServer(server_tree).handle(BlobRequest())

    def test_unknown_message_rejected(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        with pytest.raises(ProtocolError):
            SearchServer(server_tree).handle(Acknowledgement())


class TestRemoteAdapter:
    def test_queries_through_channel_match_local(self, outsourced_catalog,
                                                  catalog_document):
        client, server_tree, _ = outsourced_catalog
        adapter, _, channel = connect_in_process(server_tree)
        local = client.lookup(server_tree, "customer")
        remote = client.lookup(adapter, "customer")
        assert remote.matches == local.matches
        assert channel.stats.round_trips > 0
        assert channel.stats.total_bytes > 0

    def test_structure_summary_cached(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        adapter, _, channel = connect_in_process(server_tree)
        adapter.root_id()
        adapter.node_count()
        # The v2 hello already carried the structure summary: no structure
        # request ever crosses the channel.
        assert channel.transcript.count(("structure", "structure-ok")) == 0
        assert channel.transcript.count(("hello", "hello-ok")) == 1

    def test_structure_summary_cached_v1(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        adapter, _, channel = connect_in_process(server_tree, protocol_version=1)
        adapter.root_id()
        adapter.node_count()
        # Legacy sessions fetch the structure exactly once (and never hello).
        assert channel.transcript.count(("structure", "structure-ok")) == 1
        assert channel.transcript.count(("hello", "hello-ok")) == 0

    def test_download_blob(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        adapter, _, _ = connect_in_process(server_tree, encrypted_blob=b"payload")
        assert adapter.download_blob() == b"payload"

    def test_verification_bytes_ordering(self, outsourced_catalog):
        """FULL verification moves more bytes than CONSTANT_ONLY, which moves
        more than NONE — the §4.3 bandwidth/security trade-off."""
        client, server_tree, _ = outsourced_catalog
        totals = {}
        for mode in VerificationMode:
            adapter, _, channel = connect_in_process(server_tree)
            client.lookup(adapter, "product", verification=mode)
            totals[mode] = channel.stats.total_bytes
        assert totals[VerificationMode.FULL] > totals[VerificationMode.CONSTANT_ONLY]
        assert totals[VerificationMode.CONSTANT_ONLY] > totals[VerificationMode.NONE]


class TestPersistence:
    def test_ring_serialisation_roundtrip(self, fp_ring, int_ring):
        assert ring_from_dict(ring_to_dict(fp_ring)) == fp_ring
        assert ring_from_dict(ring_to_dict(int_ring)) == int_ring
        with pytest.raises(ProtocolError):
            ring_from_dict({"kind": "weird"})

    def test_share_tree_roundtrip_in_memory(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        restored = share_tree_from_dict(share_tree_to_dict(server_tree))
        assert restored.node_ids() == server_tree.node_ids()
        for node_id in server_tree.node_ids():
            assert restored.share_of(node_id) == server_tree.share_of(node_id)
        # Queries keep working against the restored tree.
        assert client.lookup(restored, "customer").matches == \
            client.lookup(server_tree, "customer").matches

    def test_share_tree_roundtrip_on_disk(self, outsourced_catalog, tmp_path):
        _, server_tree, _ = outsourced_catalog
        path = str(tmp_path / "server.json")
        size = save_share_tree(server_tree, path)
        assert size > 0
        restored = load_share_tree(path)
        assert restored.node_count() == server_tree.node_count()

    def test_int_ring_persistence(self, paper_document):
        from repro.core import choose_int_ring

        client, server_tree, _ = outsource_document(
            paper_document, ring=choose_int_ring(2), seed=b"persist-int")
        restored = share_tree_from_dict(share_tree_to_dict(server_tree))
        assert client.lookup(restored, "client").matches == [1, 3]

    def test_in_memory_store(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        store = InMemoryServerStore()
        store.put("catalog", server_tree)
        assert "catalog" in store
        assert store.get("catalog") is server_tree
        assert store.names() == ["catalog"]
        assert store.total_storage_bits() == server_tree.storage_bits()
        assert len(store) == 1
        store.delete("catalog")
        assert "catalog" not in store
        with pytest.raises(KeyError):
            store.get("catalog")
