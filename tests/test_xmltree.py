"""Tests for the XML substrate: model, parser and serializer."""

import pytest

from repro.errors import XmlParseError
from repro.xmltree import (
    XmlDocument,
    XmlElement,
    parse_document,
    parse_element,
    serialize_document,
    serialize_element,
)


class TestModel:
    def test_tag_validation(self):
        with pytest.raises(ValueError):
            XmlElement("")
        with pytest.raises(ValueError):
            XmlElement("1badstart")
        with pytest.raises(ValueError):
            XmlElement("has space")
        assert XmlElement("ns:tag").tag == "ns:tag"

    def test_building_and_navigation(self):
        root = XmlElement("a")
        b = root.add("b")
        c = b.add("c")
        assert c.depth() == 2
        assert c.root() is root
        assert c.path() == (0, 0)
        assert c.tag_path() == "a/b/c"
        assert list(root.iter()) == [root, b, c]
        assert list(root.iter_postorder()) == [c, b, root]
        assert list(c.ancestors()) == [b, root]
        assert b.is_leaf() is False and c.is_leaf() is True

    def test_add_child_type_check(self):
        with pytest.raises(TypeError):
            XmlElement("a").add_child("not an element")

    def test_detach(self):
        root = XmlElement("a")
        child = root.add("b")
        child.detach()
        assert root.children == []
        assert child.parent is None

    def test_sizes_and_heights(self):
        root = XmlElement("a")
        root.add("b").add("c")
        root.add("d")
        document = XmlDocument(root)
        assert document.size() == 4
        assert document.height() == 2
        assert root.height() == 2
        assert document.distinct_tags() == ["a", "b", "c", "d"]
        assert document.tag_counts() == {"a": 1, "b": 1, "c": 1, "d": 1}

    def test_find_all_and_descendant_tags(self):
        root = XmlElement("x")
        root.add("y").add("x")
        assert len(root.find_all("x")) == 2
        assert sorted(root.descendant_tags()) == ["x", "x", "y"]

    def test_element_by_path(self):
        root = XmlElement("a")
        first = root.add("b")
        second = root.add("b")
        target = second.add("c")
        document = XmlDocument(root)
        assert document.element_by_path((1, 0)) is target
        assert document.element_by_path(()) is root

    def test_clone_and_equality(self):
        root = XmlElement("a", {"id": "1"}, text="hello")
        root.add("b")
        copy = root.clone()
        assert copy is not root
        assert copy.structurally_equal(root)
        copy.add("c")
        assert not copy.structurally_equal(root)

    def test_statistics(self):
        root = XmlElement("a")
        for _ in range(3):
            root.add("b")
        stats = XmlDocument(root).statistics()
        assert stats.element_count == 4
        assert stats.leaf_count == 3
        assert stats.max_fanout == 3
        assert stats.average_fanout == 3.0
        assert "element_count" in stats.as_dict()

    def test_document_requires_element_root(self):
        with pytest.raises(TypeError):
            XmlDocument("not an element")


class TestParser:
    def test_simple_document(self):
        document = parse_document("<a><b/><c>text</c></a>")
        assert document.root.tag == "a"
        assert [c.tag for c in document.root.children] == ["b", "c"]
        assert document.root.children[1].text == "text"

    def test_attributes(self):
        element = parse_element('<a x="1" y=\'two\'/>')
        assert element.attributes == {"x": "1", "y": "two"}

    def test_entities(self):
        element = parse_element("<a>&lt;&amp;&gt;&quot;&apos;&#65;&#x42;</a>")
        assert element.text == "<&>\"'AB"

    def test_declaration_doctype_comments_and_pis(self):
        text = """<?xml version="1.0"?>
        <!DOCTYPE a>
        <!-- comment -->
        <a><!-- inner --><b/></a>
        <!-- trailing -->"""
        document = parse_document(text)
        assert document.size() == 2

    def test_nested_whitespace_and_text(self):
        element = parse_element("<a>\n  hello  \n<b/></a>")
        assert element.text == "hello"

    @pytest.mark.parametrize("bad", [
        "",
        "just text",
        "<a>",
        "<a></b>",
        "<a x=1/>",
        "<a x='1' x='2'/>",
        "<a>&unknown;</a>",
        "<a/><b/>",
        "<a><b></a></b>",
        "<a ",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(XmlParseError):
            parse_element(bad)

    def test_error_reports_location(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_element("<a>\n<b></c></a>")
        assert "line 2" in str(excinfo.value)


class TestSerializer:
    def test_roundtrip(self):
        source = '<a id="1"><b>text &amp; more</b><c/><d>x</d></a>'
        document = parse_document(source)
        again = parse_document(serialize_document(document))
        assert again.structurally_equal(document)

    def test_compact_output_has_no_newlines(self):
        document = parse_document("<a><b/><c/></a>")
        compact = serialize_element(document.root, indent=0)
        assert "\n" not in compact

    def test_declaration_toggle(self):
        document = parse_document("<a/>")
        assert serialize_document(document).startswith("<?xml")
        assert not serialize_document(document, declaration=False).startswith("<?xml")

    def test_escaping(self):
        element = XmlElement("a", {"q": 'say "hi" & <bye>'}, text="1 < 2 & 3 > 2")
        rendered = serialize_element(element)
        assert "&quot;" in rendered and "&amp;" in rendered and "&lt;" in rendered
        parsed = parse_element(rendered)
        assert parsed.attributes["q"] == 'say "hi" & <bye>'
        assert parsed.text == "1 < 2 & 3 > 2"

    def test_roundtrip_of_generated_workloads(self):
        from repro.workloads import generate_catalog_document, generate_xmark_document

        for document in (generate_catalog_document(), generate_xmark_document()):
            again = parse_document(serialize_document(document, indent=0))
            assert again.structurally_equal(document)
