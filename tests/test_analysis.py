"""Tests for the analysis tooling: storage, bandwidth, leakage and tables."""

import pytest

from repro.analysis import (
    audit_server_view,
    format_ratio,
    format_table,
    fp_storage_formula_bits,
    int_storage_formula_bits,
    measure_download_all_bandwidth,
    measure_lookup_bandwidth,
    plaintext_storage_formula_bits,
    rows_from_dicts,
    share_value_histogram,
    storage_report,
)
from repro.core import LocalServerAdapter, VerificationMode, choose_int_ring
from repro.net import connect_in_process


class TestStorageAnalysis:
    def test_formulas(self):
        assert plaintext_storage_formula_bits(100, 16) == pytest.approx(400)
        assert fp_storage_formula_bits(100, 5) == pytest.approx(100 * 4 * 2.3219, rel=1e-3)
        assert int_storage_formula_bits(10, 4, 2) == pytest.approx(100 * 3 * 2)

    def test_report_rows(self, catalog_document, outsourced_catalog):
        client, _, _ = outsourced_catalog
        rows = storage_report(catalog_document, client.mapping,
                              fp_ring=client.ring, int_ring=choose_int_ring(2))
        assert [row.representation for row in rows][0] == "plaintext"
        assert len(rows) == 3
        plaintext_row, fp_row, int_row = rows
        # The §5 ordering: encrypted representations cost (much) more.
        assert fp_row.measured_bits > plaintext_row.measured_bits
        assert int_row.measured_bits > plaintext_row.measured_bits
        for row in rows:
            assert row.overhead_vs_formula > 0
            assert set(row.as_dict()) >= {"representation", "measured_bits",
                                          "formula_bits"}

    def test_report_with_single_ring(self, catalog_document, outsourced_catalog):
        client, _, _ = outsourced_catalog
        rows = storage_report(catalog_document, client.mapping, fp_ring=client.ring)
        assert len(rows) == 2


class TestBandwidthAnalysis:
    def test_lookup_rows_cover_modes(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        rows = measure_lookup_bandwidth(client, server_tree, "customer")
        assert [row.mode for row in rows] == [
            "scheme/full", "scheme/constant-only", "scheme/none"]
        assert all(row.total_bytes > 0 for row in rows)
        assert rows[0].total_bytes > rows[2].total_bytes
        assert all(row.matches == rows[0].matches for row in rows[:1])

    def test_single_mode_selection(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        rows = measure_lookup_bandwidth(client, server_tree, "customer",
                                        modes=[VerificationMode.NONE])
        assert len(rows) == 1
        assert rows[0].as_dict()["mode"] == "scheme/none"

    def test_download_all_row(self, catalog_document):
        row = measure_download_all_bandwidth(catalog_document, "customer")
        assert row.mode == "baseline/download-all"
        assert row.bytes_to_client > row.bytes_to_server
        assert row.round_trips == 1

    def test_scheme_beats_download_all_for_selective_queries(self, catalog_document,
                                                             outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        scheme = measure_lookup_bandwidth(client, server_tree, "location",
                                          modes=[VerificationMode.NONE])[0]
        download = measure_download_all_bandwidth(catalog_document, "location")
        assert scheme.total_bytes < download.total_bytes


class TestLeakageAnalysis:
    def test_audit_local_adapter(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        adapter = LocalServerAdapter(server_tree)
        client.lookup(adapter, "customer", verification=VerificationMode.NONE)
        client.lookup(adapter, "customer", verification=VerificationMode.NONE)
        report = audit_server_view(adapter)
        assert report.node_count == server_tree.node_count()
        assert report.distinct_points_seen == 1
        assert max(report.point_frequencies.values()) >= 2     # repetition is visible
        assert report.tag_names_seen == 0
        assert report.plaintext_seen == 0
        assert report.structure_known

    def test_audit_remote_server(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        adapter, server, _ = connect_in_process(server_tree)
        client.lookup(adapter, "order")
        client.lookup(adapter, "customer")
        report = audit_server_view(server)
        assert report.distinct_points_seen == 2
        assert report.evaluation_requests > 0
        assert "distinct_points_seen" in report.as_dict()

    def test_audit_rejects_other_objects(self):
        with pytest.raises(TypeError):
            audit_server_view(object())

    def test_share_histogram_spreads_over_field(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        histogram = share_value_histogram(server_tree)
        assert sum(histogram.values()) == server_tree.node_count()
        # With >200 nodes over a small prime the histogram hits most values.
        assert len(histogram) >= server_tree.ring.p // 2


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["x", 0.0001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5
        assert "1.000e-04" in text

    def test_format_ratio(self):
        assert format_ratio(10, 2) == "5.0x"
        assert format_ratio(1, 0) == "inf"
        assert format_ratio(0, 0) == "1.0x"

    def test_rows_from_dicts(self):
        rows = rows_from_dicts([{"a": 1, "b": 2}, {"a": 3}], ["a", "b"])
        assert rows == [[1, 2], [3, ""]]
