"""Tests for the k-out-of-n multi-server query path (§4.2 extension)."""

import pytest

from repro.baselines import PlaintextSearchIndex
from repro.core import (
    ThresholdServerGroup,
    VerificationMode,
    choose_int_ring,
    outsource_document_multi_server,
)
from repro.errors import QueryError, SharingError, ThresholdError
from repro.workloads import CatalogConfig, figure1_document, generate_catalog_document


@pytest.fixture(scope="module")
def multi_server_catalog():
    document = generate_catalog_document(CatalogConfig(customers=5, products=4))
    client, trees, sharing = outsource_document_multi_server(
        document, servers=4, threshold=3, seed=b"multi-server")
    return document, client, trees, sharing


class TestOutsourcing:
    def test_every_server_gets_the_full_structure(self, multi_server_catalog):
        document, _, trees, _ = multi_server_catalog
        assert set(trees) == {1, 2, 3, 4}
        for tree in trees.values():
            assert tree.node_count() == document.size()
            assert tree.root_id == 0

    def test_individual_server_shares_differ(self, multi_server_catalog):
        _, _, trees, _ = multi_server_catalog
        root_shares = {index: tree.share_of(0) for index, tree in trees.items()}
        assert len({tuple(share.coeffs) for share in root_shares.values()}) > 1

    def test_int_ring_rejected(self, paper_document):
        with pytest.raises(SharingError):
            outsource_document_multi_server(paper_document, servers=3, threshold=2,
                                            ring=choose_int_ring(2))

    def test_too_many_servers_for_small_prime(self):
        document = figure1_document()
        with pytest.raises(ThresholdError):
            outsource_document_multi_server(document, servers=10, threshold=2,
                                            seed=b"x", strict=False)

    def test_needs_at_least_one_server(self, paper_document):
        with pytest.raises(SharingError):
            outsource_document_multi_server(paper_document, servers=0, threshold=1)


class TestQuorumQueries:
    def test_any_threshold_quorum_answers_correctly(self, multi_server_catalog):
        document, client, trees, sharing = multi_server_catalog
        plaintext = PlaintextSearchIndex(document)
        for online in ([1, 2, 3], [2, 3, 4], [1, 3, 4], [1, 2, 3, 4]):
            group = ThresholdServerGroup(sharing, trees, online=online)
            for tag in ("customer", "order", "product"):
                assert client.lookup(group, tag).matches == plaintext.lookup(tag).matches

    def test_advanced_queries_work_over_the_group(self, multi_server_catalog):
        document, client, trees, sharing = multi_server_catalog
        plaintext = PlaintextSearchIndex(document)
        group = ThresholdServerGroup(sharing, trees, online=[2, 3, 4])
        for query in ("//customer/order", "//customer//product"):
            assert client.xpath(group, query).matches == plaintext.query(query).matches

    def test_verification_modes_work_over_the_group(self, multi_server_catalog):
        document, client, trees, sharing = multi_server_catalog
        plaintext = PlaintextSearchIndex(document)
        group = ThresholdServerGroup(sharing, trees)
        for mode in (VerificationMode.FULL, VerificationMode.NONE):
            outcome = client.lookup(group, "customer", verification=mode)
            assert set(plaintext.lookup("customer").matches) <= set(outcome.all_answers())

    def test_per_server_cost_is_tracked(self, multi_server_catalog):
        _, client, trees, sharing = multi_server_catalog
        group = ThresholdServerGroup(sharing, trees, online=[1, 2, 3])
        client.lookup(group, "customer")
        assert all(count > 0 for count in group.evaluations_per_server.values())
        assert len(group.evaluations_per_server) == 3

    def test_storage_is_n_times_single_server(self, multi_server_catalog):
        document, _, trees, sharing = multi_server_catalog
        group = ThresholdServerGroup(sharing, trees)
        single = trees[1].storage_bits()
        assert group.storage_bits() == 4 * single


class TestQuorumValidation:
    def test_too_few_online_servers_rejected(self, multi_server_catalog):
        _, _, trees, sharing = multi_server_catalog
        with pytest.raises(ThresholdError):
            ThresholdServerGroup(sharing, trees, online=[1, 2])

    def test_unknown_server_index_rejected(self, multi_server_catalog):
        _, _, trees, sharing = multi_server_catalog
        with pytest.raises(QueryError):
            ThresholdServerGroup(sharing, trees, online=[1, 2, 9])

    def test_figure1_multi_server_end_to_end(self):
        from repro.workloads import figure1_mapping

        document = figure1_document()
        client, trees, sharing = outsource_document_multi_server(
            document, servers=3, threshold=2, mapping=figure1_mapping(),
            seed=b"fig-multi", strict=False)
        group = ThresholdServerGroup(sharing, trees, online=[1, 3])
        outcome = client.lookup(group, "client")
        assert outcome.matches == [1, 3]
        assert set(outcome.pruned_nodes) == {2, 4}
