"""Property-based tests for the end-to-end scheme over random documents.

The central invariants:

* encoding is lossless (Theorem 1/2 at tree scale);
* client/server shares always recombine to the encoding;
* the encrypted lookup returns exactly the plaintext XPath answer;
* pruning is sound (no pruned subtree contains an answer).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import PlaintextSearchIndex
from repro.core import (
    TagMapping,
    choose_fp_ring,
    choose_int_ring,
    decode_tree,
    encode_document,
    outsource_document,
    share_tree,
)
from repro.prg import DeterministicPRG
from repro.xmltree import XmlDocument, XmlElement

_TAGS = ["alpha", "beta", "gamma", "delta", "epsilon"]


@st.composite
def xml_documents(draw, max_children=4, max_depth=4, max_nodes=40):
    """Random small documents over a fixed five-tag vocabulary."""
    budget = draw(st.integers(min_value=1, max_value=max_nodes))
    counter = [0]

    def build(depth: int) -> XmlElement:
        element = XmlElement(draw(st.sampled_from(_TAGS)))
        counter[0] += 1
        if depth >= max_depth or counter[0] >= budget:
            return element
        for _ in range(draw(st.integers(min_value=0, max_value=max_children))):
            if counter[0] >= budget:
                break
            element.add_child(build(depth + 1))
        return element

    return XmlDocument(build(0))


_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestEncodingProperties:
    @_settings
    @given(xml_documents())
    def test_encoding_is_lossless_fp(self, document):
        ring = choose_fp_ring(document)
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=ring.p - 2)
        tree = encode_document(document, mapping, ring)
        decoded = decode_tree(tree, mapping)
        assert [e.tag for e in decoded.iter()] == [e.tag for e in document.iter()]

    @_settings
    @given(xml_documents(max_nodes=25))
    def test_encoding_is_lossless_int(self, document):
        ring = choose_int_ring(2)
        mapping = TagMapping.for_tags(document.distinct_tags())
        tree = encode_document(document, mapping, ring)
        decoded = decode_tree(tree, mapping)
        assert [e.tag for e in decoded.iter()] == [e.tag for e in document.iter()]

    @_settings
    @given(xml_documents(), st.binary(min_size=1, max_size=16))
    def test_shares_always_recombine(self, document, seed):
        ring = choose_fp_ring(document)
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=ring.p - 2)
        tree = encode_document(document, mapping, ring)
        client, server = share_tree(tree, DeterministicPRG(seed))
        for node in tree.iter_preorder():
            combined = ring.add(client.share_for(node.node_id),
                                server.share_of(node.node_id))
            assert combined == node.polynomial

    @_settings
    @given(xml_documents())
    def test_root_polynomial_contains_exactly_the_document_tags(self, document):
        ring = choose_fp_ring(5, strict=True)
        mapping = TagMapping.for_tags(_TAGS, max_value=ring.p - 2)
        tree = encode_document(document, mapping, ring)
        present = set(document.distinct_tags())
        root = tree.polynomial(0)
        for tag in _TAGS:
            is_root_of_poly = ring.evaluate(root, mapping.value(tag)) == 0
            assert is_root_of_poly == (tag in present)


class TestQueryProperties:
    @_settings
    @given(xml_documents(), st.sampled_from(_TAGS), st.binary(min_size=1, max_size=8))
    def test_lookup_equals_plaintext_xpath(self, document, tag, seed):
        client, server_tree, _ = outsource_document(document, seed=seed)
        plaintext = PlaintextSearchIndex(document)
        if tag not in client.mapping:
            return
        assert client.lookup(server_tree, tag).matches == plaintext.lookup(tag).matches

    @_settings
    @given(xml_documents(max_nodes=25), st.sampled_from(_TAGS))
    def test_lookup_equals_plaintext_xpath_int_ring(self, document, tag):
        client, server_tree, _ = outsource_document(
            document, ring=choose_int_ring(2), seed=b"prop-int")
        plaintext = PlaintextSearchIndex(document)
        if tag not in client.mapping:
            return
        assert client.lookup(server_tree, tag).matches == plaintext.lookup(tag).matches

    @_settings
    @given(xml_documents(), st.sampled_from(_TAGS))
    def test_pruning_is_sound(self, document, tag):
        client, server_tree, tree = outsource_document(document, seed=b"prop-prune")
        if tag not in client.mapping:
            return
        outcome = client.lookup(server_tree, tag)
        matches = set(PlaintextSearchIndex(document).lookup(tag).matches)
        for pruned in outcome.pruned_nodes:
            assert not matches.intersection(tree.subtree_ids(pruned))

    @_settings
    @given(xml_documents(), st.sampled_from(_TAGS), st.sampled_from(_TAGS))
    def test_two_step_queries_match_plaintext(self, document, first, second):
        client, server_tree, _ = outsource_document(document, seed=b"prop-path")
        query = f"//{first}//{second}"
        truth = PlaintextSearchIndex(document).query(query).matches
        if first not in client.mapping or second not in client.mapping:
            return
        assert client.xpath(server_tree, query).matches == truth
