"""Tests for repro.algebra.primes."""

import random

import pytest

from repro.algebra.primes import (
    factorize,
    is_prime,
    is_prime_power,
    next_prime,
    previous_prime,
    prime_factors,
    primes_below,
    random_prime,
    smallest_prime_at_least,
)


class TestIsPrime:
    def test_small_values(self):
        known_primes = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        for n in range(50):
            assert is_prime(n) == (n in known_primes)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael)

    def test_large_known_prime(self):
        assert is_prime(2 ** 61 - 1)          # a Mersenne prime
        assert not is_prime(2 ** 61 - 3)

    def test_very_large_probabilistic_path(self):
        # Above the deterministic limit the probabilistic path is used.
        n = (1 << 90) + 7                       # composite
        assert not is_prime(n)


class TestPrimeGeneration:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17
        assert next_prime(14) == 17

    def test_smallest_prime_at_least(self):
        assert smallest_prime_at_least(13) == 13
        assert smallest_prime_at_least(14) == 17
        assert smallest_prime_at_least(0) == 2

    def test_previous_prime(self):
        assert previous_prime(13) == 11
        assert previous_prime(3) == 2
        with pytest.raises(ValueError):
            previous_prime(2)

    def test_random_prime_has_requested_bits(self):
        rng = random.Random(1)
        for bits in (8, 16, 32):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_random_prime_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            random_prime(1)

    def test_primes_below(self):
        assert primes_below(2) == []
        assert primes_below(20) == [2, 3, 5, 7, 11, 13, 17, 19]
        assert len(primes_below(1000)) == 168


class TestFactorisation:
    def test_small(self):
        assert factorize(1) == []
        assert factorize(12) == [(2, 2), (3, 1)]
        assert factorize(97) == [(97, 1)]

    def test_product_roundtrip(self):
        rng = random.Random(3)
        for _ in range(20):
            n = rng.randint(2, 10 ** 9)
            product = 1
            for p, e in factorize(n):
                assert is_prime(p)
                product *= p ** e
            assert product == n

    def test_prime_factors(self):
        assert prime_factors(360) == [2, 3, 5]

    def test_invalid(self):
        with pytest.raises(ValueError):
            factorize(0)


class TestPrimePowers:
    def test_recognises_prime_powers(self):
        assert is_prime_power(5) == (5, 1)
        assert is_prime_power(8) == (2, 3)
        assert is_prime_power(3 ** 4) == (3, 4)

    def test_rejects_non_prime_powers(self):
        assert is_prime_power(12) is None
        assert is_prime_power(1) is None
        assert is_prime_power(36) is None
