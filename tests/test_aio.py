"""Asyncio transport tests: coalescing bit-identity, sockets, pipelining.

The hard guarantee of the async serving path is that coalescing changes
*when* work happens, never *what* is answered: every response must be
byte-identical to what the synchronous per-request path produces.  These
tests assert that at the engine level (``frontier_batch`` vs ``handle``),
at the transport level (async socket vs threaded socket vs in-process
channel) and under real concurrent load.
"""

import asyncio
import threading

import pytest

from repro.core import VerificationMode, outsource_document
from repro.core.advanced import AdvancedQueryExecutor
from repro.errors import ProtocolError
from repro.net import (
    AsyncServerInterface,
    SearchServer,
    ThreadedSearchServer,
    connect,
    connect_socket,
    start_async_server,
)
from repro.net.messages import EvaluateRequest, FrontierRequest
from repro.workloads import figure1_document

QUERIES = ["//client", "//name", "//client/name", "/customers/client/name"]


@pytest.fixture(scope="module")
def outsourced():
    document = figure1_document(clients=6)
    client, tree, _ = outsource_document(document, seed=b"aio-tests")
    return client, tree


@pytest.fixture()
def async_handle(outsourced):
    _, tree = outsourced
    handle = start_async_server(SearchServer(tree))
    yield handle
    handle.stop()


def run_queries(client, adapter):
    return [AdvancedQueryExecutor(client.engine(adapter)).execute(query).matches
            for query in QUERIES]


class TestFrontierBatchIdentity:
    """frontier_batch answers must be bit-identical to per-request handle."""

    def build_requests(self, tree):
        root = tree.root_id
        children = tree.child_ids(root)
        return [
            FrontierRequest([root], [3]),
            FrontierRequest(children, [3, 4], lookahead=1),
            FrontierRequest([root], [4], lookahead=2,
                            fetch_polynomials=[root]),
            FrontierRequest(children[:1], [3], include_children=False,
                            fetch_constants=children[:2]),
            FrontierRequest([root], [3], prune=children[2:3]),
        ]

    def test_batch_equals_sequential(self, outsourced):
        _, tree = outsourced
        batch_server = SearchServer(tree)
        sequential_server = SearchServer(tree)
        requests = self.build_requests(tree)
        batched = batch_server.frontier_batch(requests)
        sequential = [sequential_server.handle(request)
                      for request in self.build_requests(tree)]
        assert [r.encode() for r in batched] == [r.encode() for r in sequential]

    def test_batch_observations_match_sequential(self, outsourced):
        _, tree = outsourced
        batch_server = SearchServer(tree)
        sequential_server = SearchServer(tree)
        batch_server.frontier_batch(self.build_requests(tree))
        for request in self.build_requests(tree):
            sequential_server.handle(request)
        batch_view = batch_server.observations.as_dict()
        sequential_view = sequential_server.observations.as_dict()
        assert batch_view == sequential_view

    def test_batch_rejects_non_frontier_messages(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        with pytest.raises(ProtocolError):
            server.frontier_batch([EvaluateRequest([0], 3)])

    def test_batch_isolates_bad_requests(self, outsourced):
        from repro.net.messages import ErrorResponse, FrontierResponse

        _, tree = outsourced
        server = SearchServer(tree)
        root = tree.root_id
        responses = server.frontier_batch([
            FrontierRequest([root], [3]),
            FrontierRequest([987654], [3]),              # unknown node id
            FrontierRequest([root], [4]),
            FrontierRequest([root], [3]).for_document("nowhere"),
        ])
        assert isinstance(responses[0], FrontierResponse)
        assert isinstance(responses[1], ErrorResponse)
        assert "987654" in responses[1].error
        assert isinstance(responses[2], FrontierResponse)
        assert isinstance(responses[3], ErrorResponse)
        assert "nowhere" in responses[3].error
        # The good requests are still bit-identical to sequential handling.
        reference = SearchServer(tree)
        assert responses[0].encode() == \
            reference.handle(FrontierRequest([root], [3])).encode()
        assert responses[2].encode() == \
            reference.handle(FrontierRequest([root], [4])).encode()

    def test_empty_batch(self, outsourced):
        _, tree = outsourced
        assert SearchServer(tree).frontier_batch([]) == []


class TestSocketTransports:
    def test_async_socket_matches_in_process(self, outsourced, async_handle):
        client, tree = outsourced
        in_process_adapter, in_process_channel = connect(SearchServer(tree))
        adapter, channel = connect_socket("127.0.0.1", async_handle.port,
                                          tree.ring)
        try:
            assert run_queries(client, adapter) == \
                run_queries(client, in_process_adapter)
            # The socket carries the same message encodings, so the
            # per-session byte accounting matches the in-process channel.
            assert channel.stats.as_dict() == in_process_channel.stats.as_dict()
        finally:
            channel.close()

    def test_threaded_socket_matches_in_process(self, outsourced):
        client, tree = outsourced
        server = ThreadedSearchServer(SearchServer(tree)).start()
        in_process_adapter, in_process_channel = connect(SearchServer(tree))
        try:
            adapter, channel = connect_socket(*server.address, tree.ring)
            assert run_queries(client, adapter) == \
                run_queries(client, in_process_adapter)
            assert channel.stats.as_dict() == in_process_channel.stats.as_dict()
            channel.close()
        finally:
            server.stop()

    def test_v1_protocol_over_socket(self, outsourced, async_handle):
        client, tree = outsourced
        reference_adapter, _ = connect(SearchServer(tree), protocol_version=1)
        adapter, channel = connect_socket("127.0.0.1", async_handle.port,
                                          tree.ring, protocol_version=1)
        try:
            assert adapter.protocol_version == 1
            assert run_queries(client, adapter) == \
                run_queries(client, reference_adapter)
        finally:
            channel.close()

    def test_server_error_is_in_band_and_session_survives(self, outsourced,
                                                          async_handle):
        _, tree = outsourced
        adapter, channel = connect_socket("127.0.0.1", async_handle.port,
                                          tree.ring)
        try:
            with pytest.raises(ProtocolError):
                adapter.evaluate([987654], 3)     # unknown node id
            # The session is still alive after the failed request.
            assert adapter.evaluate([tree.root_id], 3)
        finally:
            channel.close()

    def test_oversized_request_rejected(self, outsourced):
        _, tree = outsourced
        handle = start_async_server(SearchServer(tree), max_frame_bytes=128)
        try:
            adapter, channel = connect_socket("127.0.0.1", handle.port,
                                              tree.ring)
            with pytest.raises(ProtocolError):
                adapter.evaluate(list(range(1000)), 3)
            channel.close()
        finally:
            handle.stop()

    def test_oversized_response_becomes_in_band_error(self, outsourced):
        _, tree = outsourced
        handle = start_async_server(SearchServer(tree), max_frame_bytes=192)
        try:
            adapter, channel = connect_socket("127.0.0.1", handle.port,
                                              tree.ring, protocol_version=1)
            # The request fits in 256 bytes; the full-tree polynomial
            # fetch response does not, so the server must answer with an
            # in-band frame-limit error rather than dropping the session.
            with pytest.raises(ProtocolError, match="frame limit"):
                adapter.fetch_polynomials(tree.node_ids())
            # ... and the session still works for small exchanges.
            assert adapter.evaluate([tree.root_id], 3)
            channel.close()
        finally:
            handle.stop()

    def test_concurrent_sessions_identical_and_coalesced(self, outsourced,
                                                         async_handle):
        client, tree = outsourced
        reference = run_queries(client, connect(SearchServer(tree))[0])
        outcomes = {}
        errors = []
        barrier = threading.Barrier(8)

        def session(index):
            try:
                adapter, channel = connect_socket(
                    "127.0.0.1", async_handle.port, tree.ring)
                try:
                    barrier.wait(timeout=30)
                    outcomes[index] = run_queries(client, adapter)
                finally:
                    channel.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        workers = [threading.Thread(target=session, args=(index,))
                   for index in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert all(outcome == reference for outcome in outcomes.values())
        server = async_handle.server
        assert server.coalesced_batches >= 1
        assert server.coalesced_requests >= server.coalesced_batches
        assert len(server.session_stats) >= 8


class TestAsyncServerInterface:
    def test_async_client_full_round(self, outsourced, async_handle):
        client, tree = outsourced

        async def scenario():
            session = await AsyncServerInterface.open(
                "127.0.0.1", async_handle.port, tree.ring)
            try:
                assert session.protocol_version == 3
                assert session.batched_rounds
                root = await session.root_id()
                assert root == tree.root_id
                assert await session.node_count() == tree.node_count()
                children = await session.children_of([root])
                assert children[root] == tree.child_ids(root)
                result = await session.frontier_round([root], [3], lookahead=1)
                assert result.round_trips == 1
                assert result.evaluations[3][root] == tree.evaluate(root, 3)
                bundle_children, data, trips = \
                    await session.verification_bundle([root])
                assert trips == 1
                assert bundle_children[root] == tree.child_ids(root)
                assert data[root] == tree.share_of(root)
            finally:
                await session.close()

        asyncio.run(scenario())

    def test_pipelined_rounds_resolve_in_order(self, outsourced, async_handle):
        _, tree = outsourced

        async def scenario():
            session = await AsyncServerInterface.open(
                "127.0.0.1", async_handle.port, tree.ring)
            try:
                root = tree.root_id
                children = tree.child_ids(root)
                # Two rounds in flight before either response is consumed:
                # the client would generate its own shares here while the
                # server evaluates both.
                first = session.begin_frontier([root], [3])
                second = session.begin_frontier(children, [3])
                second_response = await second
                first_response = await first
                assert set(first_response.evaluations[3]) == {root}
                assert set(second_response.evaluations[3]) == set(children)
            finally:
                await session.close()

        asyncio.run(scenario())

    def test_async_client_error_propagates(self, outsourced, async_handle):
        _, tree = outsourced

        async def scenario():
            session = await AsyncServerInterface.open(
                "127.0.0.1", async_handle.port, tree.ring)
            try:
                with pytest.raises(ProtocolError):
                    await session.evaluate([987654], 3)
                # Session survives the in-band error.
                values = await session.evaluate([tree.root_id], 3)
                assert values[tree.root_id] == tree.evaluate(tree.root_id, 3)
            finally:
                await session.close()

        asyncio.run(scenario())

    def test_async_client_v1_composes_rounds(self, outsourced, async_handle):
        _, tree = outsourced

        async def scenario():
            session = await AsyncServerInterface.open(
                "127.0.0.1", async_handle.port, tree.ring,
                protocol_version=1)
            try:
                assert session.protocol_version == 1
                assert not session.batched_rounds
                with pytest.raises(ProtocolError):
                    session.begin_frontier([tree.root_id], [3])
                root = tree.root_id
                result = await session.frontier_round([root], [3],
                                                      prune=[])
                # v1 composes per-kind exchanges: evaluate + children.
                assert result.round_trips == 2
                assert result.evaluations[3][root] == tree.evaluate(root, 3)
                children, data, trips = \
                    await session.verification_bundle([root])
                assert trips == 2
                assert data[root] == tree.share_of(root)
                assert children[root] == tree.child_ids(root)
                constants = await session.fetch_constants([root])
                assert constants[root] == int(
                    tree.share_of(root).constant_term)
            finally:
                await session.close()

        asyncio.run(scenario())

    def test_requests_after_disconnect_fail_fast(self, outsourced):
        _, tree = outsourced
        handle = start_async_server(SearchServer(tree))

        async def scenario():
            session = await AsyncServerInterface.open(
                "127.0.0.1", handle.port, tree.ring)
            try:
                handle.stop()                       # server goes away
                with pytest.raises(ProtocolError):
                    await session.evaluate([tree.root_id], 3)
                # Later requests fail fast instead of hanging forever.
                with pytest.raises(ProtocolError):
                    await asyncio.wait_for(
                        session.children_of([tree.root_id]), timeout=5)
            finally:
                await session.close()

        try:
            asyncio.run(scenario())
        finally:
            handle.stop()

    def test_unknown_version_rejected(self, outsourced, async_handle):
        _, tree = outsourced

        async def scenario():
            with pytest.raises(ProtocolError):
                await AsyncServerInterface.open(
                    "127.0.0.1", async_handle.port, tree.ring,
                    protocol_version=99)

        asyncio.run(scenario())


class TestBitIdentityAcrossTransports:
    """The BENCH_3 precondition: async answers == sync answers, exactly."""

    def test_lookup_matches_identical(self, outsourced):
        client, tree = outsourced
        reference = {}
        for tag in ("client", "name", "customers"):
            outcome = client.lookup(tree, tag,
                                    verification=VerificationMode.NONE)
            reference[tag] = tuple(outcome.matches)

        threaded = ThreadedSearchServer(SearchServer(tree)).start()
        handle = start_async_server(SearchServer(tree))
        try:
            for transport_port in (threaded.address[1], handle.port):
                adapter, channel = connect_socket("127.0.0.1", transport_port,
                                                  tree.ring)
                for tag, expected in reference.items():
                    outcome = client.lookup(
                        adapter, tag, verification=VerificationMode.NONE)
                    assert tuple(outcome.matches) == expected
                channel.close()
        finally:
            handle.stop()
            threaded.stop()
