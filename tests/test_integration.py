"""End-to-end integration tests across all subsystems.

Each test exercises a complete user journey: outsource a realistic
document over the instrumented network transport, run queries in both
rings, verify answers against the plaintext oracle, restart the server
from persisted state, and audit what leaked.
"""

import pytest

from repro.analysis import audit_server_view, storage_report
from repro.baselines import (
    DownloadAllClient,
    PlaintextSearchIndex,
    build_bloom_index,
    build_linear_scan,
)
from repro.core import (
    AdvancedStrategy,
    ClientContext,
    VerificationMode,
    choose_int_ring,
    outsource_document,
)
from repro.net import connect_in_process, load_share_tree, save_share_tree
from repro.prg import DeterministicPRG
from repro.workloads import (
    CatalogConfig,
    XMarkConfig,
    generate_catalog_document,
    generate_xmark_document,
)


class TestFullJourneyCatalog:
    def test_outsource_query_persist_restart(self, tmp_path):
        document = generate_catalog_document(CatalogConfig(customers=8, products=6))
        plaintext = PlaintextSearchIndex(document)

        # 1. Outsource.
        client, server_tree, _ = outsource_document(document, seed=b"journey")

        # 2. Query over the wire with full verification.
        adapter, server, channel = connect_in_process(server_tree)
        queries = ["//customer", "//customer/order//product", "//warehouse//quantity"]
        for query in queries:
            result = client.xpath(adapter, query)
            assert result.matches == plaintext.query(query).matches
        assert channel.stats.total_bytes > 0

        # 3. The server never saw a tag name and the audit reflects the traffic.
        report = audit_server_view(server)
        assert report.tag_names_seen == 0
        assert report.distinct_points_seen >= 3

        # 4. Persist the server state, reload it, and keep querying with a client
        #    rebuilt purely from its secret state (seed + mapping).
        path = str(tmp_path / "outsourced.json")
        save_share_tree(server_tree, path)
        restarted_tree = load_share_tree(path)
        restored_client = ClientContext.from_secret_state(
            client.ring, client.secret_state())
        for query in queries:
            assert restored_client.xpath(restarted_tree, query).matches == \
                plaintext.query(query).matches

    def test_all_systems_agree_on_answers(self):
        document = generate_catalog_document(CatalogConfig(customers=5, products=4))
        plaintext = PlaintextSearchIndex(document)
        scheme_client, server_tree, _ = outsource_document(document, seed=b"agree")
        linear_client, linear_index = build_linear_scan(document)
        bloom_client, bloom_index = build_bloom_index(document)
        download_client = DownloadAllClient(DeterministicPRG(b"agree-dl"))
        download_server = download_client.outsource(document)

        for tag in document.distinct_tags():
            expected = plaintext.lookup(tag).matches
            assert scheme_client.lookup(server_tree, tag).matches == expected
            assert linear_client.lookup(linear_index, tag).matches == expected
            assert bloom_client.lookup(bloom_index, tag).matches == expected
            assert download_client.lookup(download_server, tag).matches == expected

    def test_storage_ordering_matches_section5(self):
        document = generate_catalog_document(CatalogConfig(customers=5, products=4))
        client, _, _ = outsource_document(document, seed=b"storage")
        rows = storage_report(document, client.mapping, fp_ring=client.ring,
                              int_ring=choose_int_ring(2))
        measured = {row.representation: row.measured_bits for row in rows}
        plaintext_bits = measured["plaintext"]
        assert all(bits > plaintext_bits for name, bits in measured.items()
                   if name != "plaintext")


class TestFullJourneyXmark:
    @pytest.mark.parametrize("verification", [VerificationMode.FULL,
                                              VerificationMode.NONE])
    def test_both_rings_answer_xmark_queries(self, verification):
        document = generate_xmark_document(XMarkConfig(items_per_region=2, people=6,
                                                       open_auctions=3))
        plaintext = PlaintextSearchIndex(document)
        for ring in (None, choose_int_ring(2)):       # None = auto F_p
            client, server_tree, _ = outsource_document(
                document, ring=ring, seed=b"xmark-journey", verification=verification)
            for query in ("//item", "//person/name", "//open_auction/bidder"):
                truth = set(plaintext.query(query).matches)
                result = client.xpath(server_tree, query)
                if verification is VerificationMode.FULL:
                    assert set(result.matches) == truth
                else:
                    assert truth <= set(result.matches) | set()

    def test_strategies_and_transport_compose(self):
        document = generate_xmark_document(XMarkConfig(items_per_region=3, people=8,
                                                       open_auctions=5))
        plaintext = PlaintextSearchIndex(document)
        client, server_tree, _ = outsource_document(document, seed=b"compose")
        adapter, _, channel = connect_in_process(server_tree)
        query = "//open_auction/bidder/personref/person"
        truth = plaintext.query(query).matches
        single = client.xpath(adapter, query, strategy=AdvancedStrategy.SINGLE_PASS)
        bytes_single = channel.stats.total_bytes
        channel.reset()
        naive = client.xpath(adapter, query, strategy=AdvancedStrategy.LEFT_TO_RIGHT)
        bytes_naive = channel.stats.total_bytes
        assert single.matches == naive.matches == truth
        assert bytes_single > 0 and bytes_naive > 0
