"""Tier-1 enforcement of the docstring lint.

CI runs ``python tools/lint_docstrings.py`` as its own step; this test
runs the identical check from the tier-1 suite so the documentation floor
(module docstrings everywhere, docstrings on every public class) cannot
regress locally either.
"""

import importlib.util
import pathlib

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_TOOL = _REPO_ROOT / "tools" / "lint_docstrings.py"


def _load_linter():
    spec = importlib.util.spec_from_file_location("lint_docstrings", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_lint_tool_exists():
    assert _TOOL.is_file()


def test_src_repro_is_docstring_clean():
    linter = _load_linter()
    violations = linter.lint([str(_REPO_ROOT / "src" / "repro")])
    assert violations == []


def test_every_package_init_has_module_docstring():
    # The headline satellite requirement, asserted directly: every
    # src/repro/*/__init__.py opens with a module docstring.
    import ast

    inits = sorted((_REPO_ROOT / "src" / "repro").rglob("__init__.py"))
    assert inits, "no packages found"
    for path in inits:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path} has no module docstring"


def test_linter_flags_missing_docstrings(tmp_path):
    linter = _load_linter()
    bad = tmp_path / "bad.py"
    bad.write_text("class Public:\n    pass\n")
    violations = linter.check_file(bad)
    codes = {line.split(": ")[1].split(" ")[0] for line in violations}
    assert codes == {"D100", "D101"}
    init = tmp_path / "__init__.py"
    init.write_text("")
    assert any("D104" in line for line in linter.check_file(init))
