"""The observability control plane: registry, admission, probes, scrape.

Covers the PR-wide invariants of the unified metrics subsystem:

* histogram edge cases — zero samples, a single sample, the overflow
  bucket — and the percentile clamping rules;
* the registry as the single source of truth: get-or-create identity,
  label-filtered totals, deterministic snapshots, Prometheus-style text;
* :class:`~repro.net.channel.ChannelStats` re-expressed as a registry
  view without breaking its historical ``stats.bytes_to_server += n``
  call sites;
* deterministic token-bucket and weighted fair-share admission under an
  injected clock;
* the :class:`~repro.core.query.AdaptiveLookahead` prune-rate trajectory
  export;
* the v3 ``stats``/``health`` wire probes, including tenant filtering,
  and the plaintext HTTP scrape endpoint;
* client-side logical vs physical attempt timings in the retry stack;
* protocol compatibility: a v2 client against a v3 server with quotas
  enabled completes lookups unchanged.
"""

import json
import urllib.request

import pytest

from repro.core import VerificationMode, outsource_document
from repro.core.query import AdaptiveLookahead
from repro.errors import ServerBusyError
from repro.net import (
    ChannelStats,
    InstrumentedChannel,
    SearchServer,
    connect,
    decode_message,
)
from repro.net.engine import DEFAULT_DOCUMENT, DocumentRegistry
from repro.net.messages import (
    HealthRequest,
    HealthResponse,
    StatsRequest,
    StatsResponse,
    StructureRequest,
)
from repro.net.retry import ResilientChannel, RetryPolicy
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    FairShareAdmission,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    TokenBucket,
    labels_key,
)
from repro.workloads import figure1_document


@pytest.fixture(scope="module")
def outsourced():
    document = figure1_document(clients=4)
    client, tree, _ = outsource_document(document, seed=b"obs-tests")
    return client, tree


# ---------------------------------------------------------------------------
# Histogram edge cases
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_zero_samples(self):
        h = Histogram("empty")
        assert h.count == 0
        assert h.percentile(50) is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p99"] is None
        assert snap["min"] is None and snap["max"] is None

    def test_single_sample_reports_exact_value(self):
        h = Histogram("one")
        h.observe(0.0123)
        # Quantisation is clamped to the observed [min, max], so a single
        # observation comes back exactly, not as a bucket bound.
        assert h.percentile(50) == 0.0123
        assert h.percentile(99) == 0.0123
        snap = h.snapshot()
        assert snap["min"] == snap["max"] == snap["p50"] == 0.0123
        assert snap["count"] == 1

    def test_overflow_bucket_reports_true_max(self):
        h = Histogram("over", buckets=[0.1, 1.0])
        h.observe(50.0)        # beyond the last bound: overflow bucket
        h.observe(75.0)
        assert h.percentile(99) == 75.0
        assert h.snapshot()["max"] == 75.0

    def test_percentiles_quantise_to_bucket_bounds(self):
        h = Histogram("buckets", buckets=[1.0, 2.0, 4.0, 8.0])
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value)
        # p50 falls in the (1, 2] bucket; its upper bound is the answer.
        assert h.percentile(50) == 2.0
        # p99 is the top sample's bucket bound, clamped to the max seen.
        assert h.percentile(99) == 3.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("bad", buckets=[])

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 9.9
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_reset(self):
        h = Histogram("r")
        h.observe(1.0)
        h.reset()
        assert h.count == 0 and h.percentile(50) is None


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", document="a")
        assert registry.counter("hits", document="a") is a
        assert registry.counter("hits", document="b") is not a
        assert registry.gauge("depth") is registry.gauge("depth")

    def test_counter_total_filters_by_label_subset(self):
        registry = MetricsRegistry()
        registry.counter("req", document="a", kind="x").inc(3)
        registry.counter("req", document="a", kind="y").inc(4)
        registry.counter("req", document="b", kind="x").inc(5)
        assert registry.counter_total("req") == 12
        assert registry.counter_total("req", document="a") == 7
        assert registry.counter_total("req", document="b", kind="x") == 5
        assert registry.counter_total("req", document="c") == 0

    def test_snapshot_is_deterministic_and_json_friendly(self):
        registry = MetricsRegistry()
        registry.counter("z_last").inc()
        registry.counter("a_first", tenant="t").inc(2)
        registry.gauge("depth").set(3.5)
        registry.histogram("lat").observe(0.01)
        snap = registry.snapshot()
        json.dumps(snap)    # must be serialisable as-is
        names = [entry["name"] for entry in snap["counters"]]
        assert names == sorted(names)
        assert snap["histograms"][0]["count"] == 1

    def test_render_text_prometheus_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", document="d1").inc(2)
        registry.gauge("inflight").set(1)
        registry.histogram("seconds").observe(0.2)
        text = registry.render_text()
        assert 'requests_total{document="d1"} 2' in text
        assert "inflight 1" in text
        assert "seconds_count 1" in text
        assert "seconds_sum" in text
        assert 'quantile="p99"' in text

    def test_labels_key_order_independent(self):
        assert labels_key({"a": "1", "b": "2"}) == labels_key({"b": "2", "a": "1"})

    def test_reset_clears_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.gauge("g").value == 0
        assert registry.histogram("h").count == 0


class TestChannelStatsView:
    def test_augmented_assignment_still_works(self):
        stats = ChannelStats()
        stats.bytes_to_server += 10
        stats.bytes_to_client += 4
        stats.requests += 1
        stats.responses += 1
        assert stats.total_bytes == 14
        assert stats.round_trips == 1
        assert stats.as_dict()["bytes_to_server"] == 10

    def test_private_registries_keep_sessions_isolated(self):
        one, two = ChannelStats(), ChannelStats()
        one.bytes_to_server += 7
        assert two.bytes_to_server == 0

    def test_shared_registry_exposes_channel_counters(self):
        registry = MetricsRegistry()
        stats = ChannelStats(registry)
        stats.bytes_to_server += 3
        assert registry.counter_total("channel_bytes_to_server") == 3

    def test_reset(self):
        stats = ChannelStats()
        stats.requests += 2
        stats.reset()
        assert stats.requests == 0 and stats.total_bytes == 0


# ---------------------------------------------------------------------------
# Admission control under an injected clock
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = {"now": 0.0}
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: clock["now"])
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        hint = bucket.try_acquire()
        assert hint is not None and hint > 0
        clock["now"] += 1.0
        assert bucket.try_acquire() is None

    def test_retry_hint_is_deficit_over_rate(self):
        clock = {"now": 0.0}
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=lambda: clock["now"])
        assert bucket.try_acquire() is None
        hint = bucket.try_acquire()
        assert hint == pytest.approx(0.5)   # one token at 2 tokens/s


class TestFairShareAdmission:
    def _clocked(self, **kwargs):
        clock = {"now": 0.0}
        admission = FairShareAdmission(clock=lambda: clock["now"], **kwargs)
        return clock, admission

    def test_unquotad_tenant_unlimited(self):
        _, admission = self._clocked()
        for _ in range(100):
            assert admission.try_admit("anyone") is None
        assert admission.ledger() == {}

    def test_default_quota_applies_to_unknown_tenants(self):
        _, admission = self._clocked()
        admission.set_default_quota(1.0, burst=2)
        assert admission.try_admit("unknown") is None
        assert admission.try_admit("unknown") is None
        assert admission.try_admit("unknown") is not None

    def test_guaranteed_bucket_then_shed(self):
        clock, admission = self._clocked()
        admission.set_quota("t", 1.0, burst=2)
        assert admission.try_admit("t") is None
        assert admission.try_admit("t") is None
        assert admission.try_admit("t") is not None
        clock["now"] += 1.0
        assert admission.try_admit("t") is None
        ledger = admission.ledger()
        assert ledger["t"]["admitted"] == 3
        assert ledger["t"]["shed"] == 1

    def test_pool_borrowing_respects_weights(self):
        clock, admission = self._clocked()
        admission.set_pool(1.0, burst=10.0)
        # heavy has 3x the weight of light; both exhaust their guaranteed
        # buckets immediately and compete for the shared pool.
        admission.set_quota("heavy", 1.0, burst=1, weight=3.0)
        admission.set_quota("light", 1.0, burst=1, weight=1.0)
        assert admission.try_admit("heavy") is None   # guaranteed
        assert admission.try_admit("light") is None   # guaranteed
        heavy = light = 0
        for _ in range(10):
            if admission.try_admit("heavy") is None:
                heavy += 1
            if admission.try_admit("light") is None:
                light += 1
        assert heavy > light        # 3x weight wins more of the pool
        assert heavy + light <= 10  # never exceeds the pool burst
        ledger = admission.ledger()
        assert ledger["heavy"]["borrowed"] > ledger["light"]["borrowed"]

    def test_borrow_ledger_decays_at_pool_rate(self):
        clock, admission = self._clocked()
        admission.set_pool(2.0, burst=4.0)
        admission.set_quota("t", 1.0, burst=1)
        admission.try_admit("t")            # guaranteed
        admission.try_admit("t")            # borrowed from the pool
        assert admission.ledger()["t"]["borrowed"] > 0
        clock["now"] += 10.0
        assert admission.ledger()["t"]["borrowed"] == 0.0

    def test_clear_quota_restores_unlimited(self):
        _, admission = self._clocked()
        admission.set_quota("t", 1.0, burst=1)
        assert admission.try_admit("t") is None
        assert admission.try_admit("t") is not None
        admission.clear_quota("t")
        for _ in range(10):
            assert admission.try_admit("t") is None


# ---------------------------------------------------------------------------
# AdaptiveLookahead trajectory export
# ---------------------------------------------------------------------------

class TestAdaptiveLookaheadTrajectory:
    def test_trajectory_records_each_round(self):
        lookahead = AdaptiveLookahead(initial=1, max_depth=3)
        lookahead.observe(10, 0)        # prune rate 0: deepen
        lookahead.observe(10, 9)        # prune rate 0.9: back off
        trajectory = lookahead.trajectory()
        assert [entry["round"] for entry in trajectory] == [1, 2]
        assert trajectory[0]["prune_rate"] == 0.0
        assert trajectory[0]["depth"] == 2
        assert trajectory[1]["prune_rate"] == pytest.approx(0.9)
        assert trajectory[1]["depth"] == 1

    def test_empty_frontier_not_recorded(self):
        lookahead = AdaptiveLookahead()
        lookahead.observe(0, 0)
        assert lookahead.trajectory() == []
        assert lookahead.rounds == 0

    def test_trajectory_is_bounded(self):
        lookahead = AdaptiveLookahead(trajectory_limit=8)
        for round_index in range(50):
            lookahead.observe(10, 3 + (round_index % 3))
        trajectory = lookahead.trajectory()
        assert len(trajectory) == 8
        assert trajectory[-1]["round"] == 50    # newest entries win
        assert lookahead.rounds == 50           # counters keep full history

    def test_as_dict_round_trips_through_json(self):
        lookahead = AdaptiveLookahead()
        lookahead.observe(10, 1)
        payload = json.loads(json.dumps(lookahead.as_dict()))
        assert payload["rounds"] == 1
        assert payload["trajectory"][0]["frontier_size"] == 10
        assert set(payload) >= {"depth", "deepened", "backed_off",
                                "trajectory"}

    def test_trajectory_returns_copies(self):
        lookahead = AdaptiveLookahead()
        lookahead.observe(10, 1)
        lookahead.trajectory()[0]["depth"] = 999
        assert lookahead.trajectory()[0]["depth"] != 999


# ---------------------------------------------------------------------------
# Wire probes: stats and health
# ---------------------------------------------------------------------------

class TestWireProbes:
    def test_stats_and_health_messages_round_trip(self):
        stats = decode_message(StatsRequest().encode())
        assert isinstance(stats, StatsRequest)
        response = decode_message(
            StatsResponse({"accounting": {"admitted": 1}}).encode())
        assert isinstance(response, StatsResponse)
        assert response.metrics["accounting"]["admitted"] == 1
        health = decode_message(HealthRequest().encode())
        assert isinstance(health, HealthRequest)
        ok = decode_message(HealthResponse("ok", {"documents": 2}).encode())
        assert isinstance(ok, HealthResponse)
        assert ok.status == "ok" and ok.detail["documents"] == 2

    def test_probes_are_hello_and_admission_exempt(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        # An admission hook that sheds everything must not block probes.
        server.registry.set_admission_hook(lambda d, m: 0.5)
        stats = server.handle(StatsRequest())
        assert isinstance(stats, StatsResponse)
        health = server.handle(HealthRequest())
        assert isinstance(health, HealthResponse)
        assert health.status == "ok"
        with pytest.raises(ServerBusyError):
            server.handle(StructureRequest())

    def test_client_adapter_probe_methods(self, outsourced):
        client, tree = outsourced
        server = SearchServer(tree)
        adapter, _ = connect(server)
        client.lookup(adapter, "client", verification=VerificationMode.NONE)
        stats = adapter.server_stats()
        accounting = stats["accounting"]
        assert accounting["admitted"] == (accounting["completed"]
                                          + accounting["shed"]
                                          + accounting["failed"]
                                          + accounting["inflight"])
        health = adapter.server_health()
        assert health["status"] == "ok"
        assert health["documents"] == 1

    def test_stats_filtered_to_addressed_tenant(self, outsourced):
        _, tree = outsourced
        server = SearchServer()
        server.add_document("doc-a", tree)
        server.add_document("doc-b", tree)
        server.handle(StructureRequest().for_document("doc-a"))
        server.handle(StructureRequest().for_document("doc-b"))
        response = server.handle(StatsRequest().for_document("doc-a"))
        documents = set()
        for section in response.metrics["instruments"].values():
            for entry in section:
                document = entry.get("labels", {}).get("document")
                if document is not None:
                    documents.add(document)
        assert "doc-a" in documents
        assert "doc-b" not in documents     # one tenant cannot read another
        assert response.metrics["accounting"]["admitted"] == 2

    def test_stats_includes_quota_ledger_for_tenant(self, outsourced):
        _, tree = outsourced
        server = SearchServer()
        server.add_document("doc-a", tree)
        server.registry.configure_quota("doc-a", 100.0, burst=100)
        server.handle(StructureRequest().for_document("doc-a"))
        response = server.handle(StatsRequest().for_document("doc-a"))
        assert response.metrics["quota"]["admitted"] == 1
        assert response.metrics["quota"]["shed"] == 0


# ---------------------------------------------------------------------------
# HTTP scrape endpoint
# ---------------------------------------------------------------------------

class TestMetricsServer:
    def test_scrape_metrics_and_health(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", document="d").inc(3)
        health = {"status": "ok", "documents": 1}
        with MetricsServer(registry, port=0,
                           health=lambda: dict(health)) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as reply:
                body = reply.read().decode("utf-8")
                assert reply.status == 200
                assert "text/plain" in reply.headers["Content-Type"]
            assert 'requests_total{document="d"} 3' in body
            with urllib.request.urlopen(f"{base}/health") as reply:
                assert json.loads(reply.read())["status"] == "ok"
            health["status"] = "draining"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/health")
            assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope")
            assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# Client stack: logical vs physical attempt timings
# ---------------------------------------------------------------------------

class TestClientTimings:
    def _policy(self, **overrides):
        settings = dict(max_attempts=6, deadline_s=None, base_backoff_s=0.0,
                        max_backoff_s=0.0, jitter=0.0, seed=0,
                        sleep=lambda _s: None)
        settings.update(overrides)
        return RetryPolicy(**settings)

    def test_clean_request_one_physical_per_logical(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        channel = ResilientChannel(
            lambda: InstrumentedChannel(server.handle),
            policy=self._policy())
        channel.request(StructureRequest())
        physical = channel.metrics.histograms(
            "client_attempt_physical_seconds")[0]
        logical = channel.metrics.histograms(
            "client_request_logical_seconds")[0]
        assert physical.count == 1
        assert logical.count == 1

    def test_busy_retries_add_physical_attempts(self, outsourced):
        from repro.net import FaultPlan, FaultRule, flaky_handler

        _, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan([FaultRule("serve:structure", "busy", calls=[1, 2],
                                    retry_after_s=0.0)], seed=0)
        channel = ResilientChannel(
            lambda: InstrumentedChannel(flaky_handler(server.handle, plan)),
            policy=self._policy())
        channel.request(StructureRequest())
        physical = channel.metrics.histograms(
            "client_attempt_physical_seconds")[0]
        logical = channel.metrics.histograms(
            "client_request_logical_seconds")[0]
        assert physical.count == 3      # two busy attempts + the success
        assert logical.count == 1       # one successful logical request
        assert channel.busy_waits == 2
        assert channel.metrics.counter_total("client_busy_waits_total") == 2


# ---------------------------------------------------------------------------
# Protocol compatibility: v2 clients against the quota-enabled v3 server
# ---------------------------------------------------------------------------

class TestV2ClientCompatibility:
    def test_v2_lookup_unchanged_with_quotas_enabled(self, outsourced):
        client, tree = outsourced
        reference = client.lookup(
            tree, "client", verification=VerificationMode.NONE).matches

        server = SearchServer(tree)
        server.registry.configure_quota(DEFAULT_DOCUMENT, 1000.0, burst=1000)
        server.registry.configure_shared_pool(100.0)
        adapter, _ = connect(server, protocol_version=2)
        assert adapter.protocol_version == 2
        outcome = client.lookup(adapter, "client",
                                verification=VerificationMode.FULL)
        assert outcome.matches == reference
        accounting = server.accounting()
        assert accounting["shed"] == 0
        assert accounting["admitted"] == (accounting["completed"]
                                          + accounting["failed"])

    def test_v2_client_cannot_use_probes(self, outsourced):
        from repro.errors import ProtocolError

        _, tree = outsourced
        adapter, _ = connect(SearchServer(tree), protocol_version=2)
        with pytest.raises(ProtocolError):
            adapter.server_stats()
        with pytest.raises(ProtocolError):
            adapter.server_health()


# ---------------------------------------------------------------------------
# Registry plumbing through the serving stack
# ---------------------------------------------------------------------------

class TestServingRegistryPlumbing:
    def test_one_registry_owns_all_serving_instruments(self, outsourced):
        client, tree = outsourced
        server = SearchServer(tree)
        adapter, _ = connect(server)
        client.lookup(adapter, "client", verification=VerificationMode.NONE)
        names = {counter.name for counter in server.metrics.counters()}
        assert "server_requests_total" in names
        histogram_names = {h.name for h in server.metrics.histograms()}
        assert "server_request_seconds" in histogram_names
        assert server.registry.metrics is server.metrics

    def test_store_metrics_bound_at_hosting_time(self, outsourced, tmp_path):
        from repro.net import SQLiteShareStore

        client, tree = outsourced
        store = SQLiteShareStore.from_tree(str(tmp_path / "obs.db"), tree)
        server = SearchServer(store)
        adapter, _ = connect(server)
        client.lookup(adapter, "client", verification=VerificationMode.NONE)
        hits = server.metrics.counter_total("store_cache_hits_total",
                                            document=DEFAULT_DOCUMENT)
        misses = server.metrics.counter_total("store_cache_misses_total",
                                              document=DEFAULT_DOCUMENT)
        assert hits + misses > 0
        store.close()
