"""Property tests: the kernel fast path is bit-identical to the generic path.

Every assertion compares an operation computed with kernels enabled (the
default) against the same operation computed inside ``use_kernels(False)``,
which forces the generic per-element reference implementation everywhere.
Randomized loops cover ``F_p`` (several characteristics), ``Z`` and
``F_{p^e}``, plus the zero/constant/degree-bound edge cases and the two
quotient rings' reductions.
"""

import random

import pytest

from repro.algebra import (
    ExtensionField,
    FpQuotientRing,
    IntQuotientRing,
    Polynomial,
    PrimeField,
    ZZ,
    default_int_modulus,
    kernels_enabled,
    use_kernels,
)
from repro.algebra.kernels import KARATSUBA_CUTOFF
from repro.core import outsource_document
from repro.core.share_tree import ClientShareGenerator
from repro.prg import DeterministicPRG
from repro.workloads import RandomXmlConfig, generate_random_document

PRIMES = [2, 3, 5, 13, 97, 10007]


def random_poly(rng, ring, max_len, span=10 ** 6):
    return Polynomial([rng.randrange(-span, span) for _ in range(rng.randrange(max_len))],
                      ring)


def generic(op, *polys):
    """Recompute ``op`` over copies of ``polys`` with every kernel disabled."""
    with use_kernels(False):
        copies = [Polynomial(p.coeffs, p.ring) for p in polys]
        return op(*copies)


def assert_same(fast, slow):
    if isinstance(fast, Polynomial):
        assert isinstance(slow, Polynomial)
        assert fast.coeffs == slow.coeffs and fast.ring == slow.ring
    elif isinstance(fast, tuple):
        for f, s in zip(fast, slow):
            assert_same(f, s)
        assert len(fast) == len(slow)
    else:
        assert fast == slow


class TestKernelSwitch:
    def test_flag_toggles_and_restores(self):
        assert kernels_enabled()
        assert PrimeField(5).kernel() is not None
        assert ZZ.kernel() is not None
        with use_kernels(False):
            assert not kernels_enabled()
            assert PrimeField(5).kernel() is None
            assert ZZ.kernel() is None
        assert kernels_enabled()

    def test_extension_field_has_no_polynomial_kernel(self):
        assert ExtensionField(3, 2).kernel() is None


class TestPolynomialAgreement:
    @pytest.mark.parametrize("p", PRIMES)
    def test_fp_ring_ops_agree(self, p):
        ring = PrimeField(p)
        rng = random.Random(p)
        # Large enough lengths to cross the Karatsuba cutoff several times.
        for max_len in (1, 2, 5, KARATSUBA_CUTOFF + 5, 3 * KARATSUBA_CUTOFF):
            for _ in range(8):
                a = random_poly(rng, ring, max_len)
                b = random_poly(rng, ring, max_len)
                scalar = rng.randrange(-50, 50)
                point = rng.randrange(-50, 50)
                assert_same(a + b, generic(lambda x, y: x + y, a, b))
                assert_same(a - b, generic(lambda x, y: x - y, a, b))
                assert_same(-a, generic(lambda x: -x, a))
                assert_same(a * b, generic(lambda x, y: x * y, a, b))
                assert_same(a * scalar, generic(lambda x: x * scalar, a))
                assert_same(a.derivative(), generic(lambda x: x.derivative(), a))
                assert_same(a.evaluate(point),
                            generic(lambda x: x.evaluate(point), a))
                if not b.is_zero():
                    assert_same(a.divmod(b), generic(lambda x, y: x.divmod(y), a, b))

    def test_integer_ring_ops_agree(self):
        rng = random.Random(0xC0FFEE)
        for max_len in (1, 2, 6, KARATSUBA_CUTOFF + 5, 2 * KARATSUBA_CUTOFF):
            for _ in range(8):
                a = random_poly(rng, ZZ, max_len)
                b = random_poly(rng, ZZ, max_len)
                scalar = rng.randrange(-10 ** 9, 10 ** 9)
                point = rng.randrange(-100, 100)
                assert_same(a + b, generic(lambda x, y: x + y, a, b))
                assert_same(a - b, generic(lambda x, y: x - y, a, b))
                assert_same(a * b, generic(lambda x, y: x * y, a, b))
                assert_same(a * scalar, generic(lambda x: x * scalar, a))
                assert_same(a.derivative(), generic(lambda x: x.derivative(), a))
                assert_same(a.evaluate(point),
                            generic(lambda x: x.evaluate(point), a))
                # Monic divisors divide exactly like the generic path.
                monic = Polynomial(list(b.coeffs[:3]) + [1], ZZ)
                assert_same(a.divmod(monic),
                            generic(lambda x, y: x.divmod(y), a, monic))

    def test_integer_divmod_requires_unit_lead_on_both_paths(self):
        a = Polynomial([1, 0, 1], ZZ)
        bad = Polynomial([1, 2], ZZ)
        with pytest.raises(ZeroDivisionError):
            a.divmod(bad)
        with use_kernels(False), pytest.raises(ZeroDivisionError):
            a.divmod(bad)
        neg_monic = Polynomial([3, -1], ZZ)
        assert_same(a.divmod(neg_monic),
                    generic(lambda x, y: x.divmod(y), a, neg_monic))

    def test_division_by_zero_on_both_paths(self):
        for ring in (PrimeField(7), ZZ):
            a = Polynomial([1, 2, 3], ring)
            with pytest.raises(ZeroDivisionError):
                a.divmod(Polynomial.zero(ring))
            with use_kernels(False), pytest.raises(ZeroDivisionError):
                a.divmod(Polynomial.zero(ring))

    def test_edge_cases(self):
        for ring in (PrimeField(5), PrimeField(2), ZZ):
            zero = Polynomial.zero(ring)
            one = Polynomial.one(ring)
            c = Polynomial([3], ring)
            x5 = Polynomial.monomial(5, ring=ring)
            for a, b in [(zero, zero), (zero, one), (one, zero), (c, c),
                         (x5, one), (x5, x5), (c, x5)]:
                assert_same(a + b, generic(lambda x, y: x + y, a, b))
                assert_same(a * b, generic(lambda x, y: x * y, a, b))
                assert_same(a - b, generic(lambda x, y: x - y, a, b))
            # Exact cancellation must trim down to the zero polynomial.
            assert (x5 - x5).is_zero()
            assert (x5 + (-x5)).is_zero()
            # Dividing a low-degree poly by a high-degree one: zero quotient.
            assert_same(c.divmod(x5), generic(lambda x, y: x.divmod(y), c, x5))
            assert zero.derivative().is_zero()
            assert c.derivative().is_zero()
            assert zero.evaluate(17) == ring.zero

    def test_derivative_drops_characteristic_multiples(self):
        # Over F_p the coefficient of x^(p-1) in d/dx x^p-th... i.e. i*c with
        # p | i must vanish and the result must stay trimmed.
        ring = PrimeField(3)
        poly = Polynomial([1, 1, 1, 1], ring)          # derivative: 1 + 2x (+0x^2)
        assert_same(poly.derivative(), generic(lambda x: x.derivative(), poly))
        tail = Polynomial([0, 0, 0, 2], ring)          # derivative: 6x^2 = 0
        assert tail.derivative().is_zero()

    def test_extension_field_polynomials_agree(self):
        # F_{p^e} has no flat kernel: the dispatch must leave the generic
        # path intact and field-element ops must agree with kernels off.
        for (p, e) in [(2, 2), (3, 2), (5, 3)]:
            field = ExtensionField(p, e)
            rng = random.Random(p * 100 + e)
            for _ in range(6):
                a = Polynomial([field.random_element(rng) for _ in range(rng.randrange(6))],
                               field)
                b = Polynomial([field.random_element(rng) for _ in range(rng.randrange(6))],
                               field)
                point = field.random_element(rng)
                assert_same(a + b, generic(lambda x, y: x + y, a, b))
                assert_same(a * b, generic(lambda x, y: x * y, a, b))
                assert_same(a.derivative(), generic(lambda x: x.derivative(), a))
                assert_same(a.evaluate(point),
                            generic(lambda x: x.evaluate(point), a))

    def test_extension_field_non_monic_modulus(self):
        # The fold rows must divide by the leading coefficient: 2y^2 + y + 1
        # is irreducible over F_5 but not monic.
        field = ExtensionField(5, 2, modulus=Polynomial([1, 1, 2]))
        rng = random.Random(9)
        for _ in range(25):
            a, b = field.random_element(rng), field.random_element(rng)
            fast = field.mul(a, b)
            with use_kernels(False):
                assert field.mul(a, b) == fast
            if a != field.zero:
                assert field.mul(a, field.invert(a)) == field.one

    def test_extension_field_element_mul_agrees(self):
        for (p, e) in [(2, 2), (3, 2), (5, 3), (7, 1)]:
            field = ExtensionField(p, e)
            rng = random.Random(p * 1000 + e)
            for _ in range(25):
                a = field.random_element(rng)
                b = field.random_element(rng)
                fast = field.mul(a, b)
                with use_kernels(False):
                    slow = field.mul(a, b)
                assert fast == slow
                if fast != field.zero:
                    assert field.mul(fast, field.invert(fast)) == field.one


class TestQuotientReduction:
    @pytest.mark.parametrize("p", [3, 5, 13, 29])
    def test_fp_quotient_reduce_agrees(self, p):
        ring = FpQuotientRing(p)
        rng = random.Random(p)
        for _ in range(30):
            poly = Polynomial([rng.randrange(p) for _ in range(rng.randrange(4 * p))],
                              ring.field)
            fast = ring.reduce(poly)
            with use_kernels(False):
                slow = ring.reduce(Polynomial(poly.coeffs, ring.field))
            assert fast.coeffs == slow.coeffs
            assert fast.degree < ring.degree_bound
            # Reducing a canonical element is the identity.
            assert ring.reduce(fast) == fast

    @pytest.mark.parametrize("degree", [1, 2, 3, 5])
    def test_int_quotient_reduce_agrees(self, degree):
        ring = IntQuotientRing(default_int_modulus(max(degree, 2))
                               if degree > 1 else Polynomial([7, 1], ZZ),
                               check_irreducible=(degree > 1))
        rng = random.Random(degree)
        for _ in range(30):
            poly = Polynomial([rng.randrange(-10 ** 6, 10 ** 6)
                               for _ in range(rng.randrange(25))], ZZ)
            fast = ring.reduce(poly)
            with use_kernels(False):
                slow = ring.reduce(Polynomial(poly.coeffs, ZZ))
            assert fast.coeffs == slow.coeffs
            assert fast.degree < ring.degree_bound
            assert ring.reduce(fast) == fast

    def test_is_canonical(self):
        fp_ring = FpQuotientRing(5)
        assert fp_ring.is_canonical(fp_ring.one)
        assert fp_ring.is_canonical(Polynomial([1, 2, 3, 4], fp_ring.field))
        assert not fp_ring.is_canonical(Polynomial.monomial(4, ring=fp_ring.field))
        assert not fp_ring.is_canonical(Polynomial([1, 2], ZZ))
        int_ring = IntQuotientRing(default_int_modulus(2))
        assert int_ring.is_canonical(Polynomial([9, -4], ZZ))
        assert not int_ring.is_canonical(Polynomial([0, 0, 1], ZZ))


class TestBatchedEvaluation:
    @pytest.mark.parametrize("make_ring", [
        lambda: FpQuotientRing(13),
        lambda: IntQuotientRing(default_int_modulus(2)),
    ])
    def test_evaluate_many_matches_scalar_evaluate(self, make_ring):
        ring = make_ring()
        rng = random.Random(42)
        elements = [ring.random_element(rng) for _ in range(12)]
        elements.append(ring.zero)
        elements.append(ring.one)
        for point in (1, 2, 3, 7):
            batched = ring.evaluate_many(elements, point)
            singles = [ring.evaluate(e, point) for e in elements]
            assert batched == singles
            with use_kernels(False):
                assert ring.evaluate_many(elements, point) == singles
        assert ring.evaluate_many([], 2) == []

    def test_share_generator_cache_and_batching(self):
        ring = FpQuotientRing(13)
        prg = DeterministicPRG(b"kernel-cache-test")
        cached = ClientShareGenerator(ring, prg, cache_size=8)
        uncached = ClientShareGenerator(ring, prg, cache_size=0)
        node_ids = list(range(20))
        for node_id in node_ids:
            assert cached.share_for(node_id) == uncached.share_for(node_id)
        # Second pass hits the LRU (or regenerates) — results must not drift.
        for node_id in node_ids:
            assert cached.share_for(node_id) == uncached.share_for(node_id)
        assert len(cached._cache) == 8
        for point in (1, 5):
            assert cached.evaluate_many(node_ids, point) == {
                node_id: uncached.evaluate(node_id, point) for node_id in node_ids}


class TestEndToEndAgreement:
    def test_outsource_and_lookup_identical_without_kernels(self):
        document = generate_random_document(
            RandomXmlConfig(element_count=40, tag_vocabulary_size=8, seed=7))
        client, server_tree, tree = outsource_document(document, seed=b"kernel-e2e")
        with use_kernels(False):
            g_client, g_server_tree, g_tree = outsource_document(
                document, seed=b"kernel-e2e")
        for node_id in tree.node_ids():
            assert tree.polynomial(node_id).coeffs == g_tree.polynomial(node_id).coeffs
            assert (server_tree.share_of(node_id).coeffs
                    == g_server_tree.share_of(node_id).coeffs)
        for tag in sorted(document.distinct_tags()):
            fast = client.lookup(server_tree, tag)
            with use_kernels(False):
                slow = g_client.lookup(g_server_tree, tag)
            assert fast.matches == slow.matches
            assert fast.zero_nodes == slow.zero_nodes
            assert fast.pruned_nodes == slow.pruned_nodes


class TestSecretStateVersioning:
    def test_old_unversioned_client_state_is_rejected(self):
        from repro.core.scheme import ClientContext
        from repro.errors import QueryError
        from repro.workloads import figure1_document

        document = figure1_document()
        client, server_tree, _ = outsource_document(document, seed=b"v2-state")
        state = client.secret_state()
        assert state["share_derivation"] == ClientContext.SHARE_DERIVATION
        restored = ClientContext.from_secret_state(client.ring, state)
        assert (restored.lookup(server_tree, "name").matches
                == client.lookup(server_tree, "name").matches)
        legacy = {k: v for k, v in state.items() if k != "share_derivation"}
        with pytest.raises(QueryError, match="share derivation"):
            ClientContext.from_secret_state(client.ring, legacy)
