"""Tests for the secret-sharing substrate (additive, Shamir, multi-server)."""

import random

import pytest

from repro.algebra import FpQuotientRing, IntQuotientRing, PrimeField, default_int_modulus
from repro.errors import SharingError, ThresholdError
from repro.sharing import (
    AdditiveMultiServerSharing,
    ShamirScheme,
    ShamirShare,
    ThresholdPolynomialSharing,
    combine_additive,
    split_additively,
    split_additively_n,
)


class TestAdditiveSharing:
    @pytest.mark.parametrize("ring_factory", [
        lambda: FpQuotientRing(5),
        lambda: FpQuotientRing(13),
        lambda: IntQuotientRing(default_int_modulus(2)),
    ])
    def test_two_party_roundtrip(self, ring_factory, rng):
        ring = ring_factory()
        for value in range(1, 4):
            element = ring.mul(ring.from_tag_value(value), ring.from_tag_value(value + 1))
            client, server = split_additively(ring, element, rng)
            assert ring.add(client, server) == element

    def test_shares_differ_from_secret(self, rng):
        ring = FpQuotientRing(101)
        element = ring.from_tag_value(7)
        client, server = split_additively(ring, element, rng)
        # With overwhelming probability a random share is not the secret itself.
        assert client != element or server != element

    def test_n_party_roundtrip(self, rng):
        ring = FpQuotientRing(7)
        element = ring.from_tag_value(3)
        for parties in (2, 3, 5):
            shares = split_additively_n(ring, element, parties, rng)
            assert len(shares) == parties
            assert combine_additive(ring, shares) == element

    def test_n_party_requires_two(self, rng):
        with pytest.raises(SharingError):
            split_additively_n(FpQuotientRing(5), FpQuotientRing(5).one, 1, rng)

    def test_combine_empty_rejected(self):
        with pytest.raises(SharingError):
            combine_additive(FpQuotientRing(5), [])

    def test_sharing_is_hiding_per_node(self, rng):
        """Two different secrets produce identically-distributed server shares
        when the client share is fixed randomness (one-time-pad argument)."""
        ring = FpQuotientRing(11)
        secret_a = ring.from_tag_value(2)
        secret_b = ring.from_tag_value(9)
        # Same client randomness, different secrets: server shares differ by
        # exactly the difference of the secrets, i.e. they are both uniform.
        client = ring.random_element(rng)
        server_a = ring.sub(secret_a, client)
        server_b = ring.sub(secret_b, client)
        assert ring.sub(server_a, server_b) == ring.sub(secret_a, secret_b)


class TestShamir:
    def test_share_and_reconstruct(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=3, parties=5)
        shares = scheme.share(secret=42, rng=rng)
        assert len(shares) == 5
        assert scheme.reconstruct(shares[:3]) == 42
        assert scheme.reconstruct(shares[2:]) == 42
        assert scheme.reconstruct(list(reversed(shares))) == 42

    def test_threshold_enforced(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=3, parties=5)
        shares = scheme.share(7, rng)
        with pytest.raises(ThresholdError):
            scheme.reconstruct(shares[:2])

    def test_duplicate_share_indices_detected(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=3)
        shares = scheme.share(9, rng)
        conflicting = [shares[0], ShamirShare(shares[0].index,
                                              (shares[0].value + 1) % 101)]
        with pytest.raises(ThresholdError):
            scheme.reconstruct(conflicting)

    def test_fewer_than_threshold_distinct(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=3)
        shares = scheme.share(9, rng)
        with pytest.raises(ThresholdError):
            scheme.reconstruct([shares[0], shares[0]])

    def test_invalid_parameters(self):
        field = PrimeField(7)
        with pytest.raises(ThresholdError):
            ShamirScheme(field, threshold=0, parties=3)
        with pytest.raises(ThresholdError):
            ShamirScheme(field, threshold=4, parties=3)
        with pytest.raises(ThresholdError):
            ShamirScheme(field, threshold=2, parties=7)   # needs parties < p
        with pytest.raises(ThresholdError):
            ShamirShare(0, 1)

    def test_single_threshold_means_constant_sharing(self, rng):
        field = PrimeField(13)
        scheme = ShamirScheme(field, threshold=1, parties=4)
        shares = scheme.share(5, rng)
        assert all(share.value == 5 for share in shares)

    def test_homomorphic_addition(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=3, parties=5)
        shares_a = scheme.share(20, rng)
        shares_b = scheme.share(30, rng)
        summed = [scheme.add_shares(a, b) for a, b in zip(shares_a, shares_b)]
        assert scheme.reconstruct(summed) == 50

    def test_scalar_multiplication(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=4)
        shares = scheme.share(6, rng)
        scaled = [scheme.scale_share(share, 7) for share in shares]
        assert scheme.reconstruct(scaled) == 42

    def test_add_shares_requires_same_party(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=3)
        shares = scheme.share(1, rng)
        with pytest.raises(ThresholdError):
            scheme.add_shares(shares[0], shares[1])

    def test_share_many(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=3)
        all_shares = scheme.share_many([1, 2, 3], rng)
        assert [scheme.reconstruct(s) for s in all_shares] == [1, 2, 3]

    def test_share_at_reconstruct_at(self, rng):
        field = PrimeField(101)
        scheme = ShamirScheme(field, threshold=2, parties=3)
        shares = scheme.share(10, rng)
        assert scheme.reconstruct_at(shares, 0) == 10


class TestThresholdPolynomialSharing:
    def test_share_and_reconstruct_elements(self, rng):
        ring = FpQuotientRing(11)
        sharing = ThresholdPolynomialSharing(ring, threshold=2, servers=4)
        element = ring.mul(ring.from_tag_value(3), ring.from_tag_value(7))
        shares = sharing.share(element, rng)
        assert len(shares) == 4
        assert sharing.reconstruct({1: shares[1], 3: shares[3]}) == element
        assert sharing.reconstruct(shares) == element

    def test_reconstruct_requires_threshold(self, rng):
        ring = FpQuotientRing(11)
        sharing = ThresholdPolynomialSharing(ring, threshold=3, servers=4)
        shares = sharing.share(ring.from_tag_value(2), rng)
        with pytest.raises(ThresholdError):
            sharing.reconstruct({1: shares[1], 2: shares[2]})

    def test_evaluation_combination(self, rng):
        ring = FpQuotientRing(11)
        sharing = ThresholdPolynomialSharing(ring, threshold=2, servers=3)
        element = ring.mul(ring.from_tag_value(4), ring.from_tag_value(9))
        shares = sharing.share(element, rng)
        point = 4
        evaluations = {index: share.evaluate(point) % 11
                       for index, share in shares.items()}
        combined = sharing.combine_evaluations({1: evaluations[1], 3: evaluations[3]})
        assert combined == ring.evaluate(element, point)

    def test_combine_requires_threshold(self, rng):
        ring = FpQuotientRing(11)
        sharing = ThresholdPolynomialSharing(ring, threshold=2, servers=3)
        with pytest.raises(ThresholdError):
            sharing.combine_evaluations({1: 5})

    def test_rejects_int_ring(self):
        ring = IntQuotientRing(default_int_modulus(2))
        with pytest.raises(SharingError):
            ThresholdPolynomialSharing(ring, threshold=2, servers=3)


class TestAdditiveMultiServer:
    @pytest.mark.parametrize("ring_factory", [
        lambda: FpQuotientRing(7),
        lambda: IntQuotientRing(default_int_modulus(2)),
    ])
    def test_roundtrip(self, ring_factory, rng):
        ring = ring_factory()
        sharing = AdditiveMultiServerSharing(ring, servers=3)
        element = ring.mul(ring.from_tag_value(2), ring.from_tag_value(3))
        shares = sharing.share(element, rng)
        assert len(shares) == 4                      # client + 3 servers
        assert sharing.reconstruct(shares) == element

    def test_all_shares_needed(self, rng):
        ring = FpQuotientRing(7)
        sharing = AdditiveMultiServerSharing(ring, servers=2)
        shares = sharing.share(ring.from_tag_value(2), rng)
        partial = {k: v for k, v in shares.items() if k != 2}
        with pytest.raises(ThresholdError):
            sharing.reconstruct(partial)

    def test_evaluation_combination(self, rng):
        ring = IntQuotientRing(default_int_modulus(2))
        sharing = AdditiveMultiServerSharing(ring, servers=2)
        element = ring.mul(ring.from_tag_value(2), ring.from_tag_value(4))
        shares = sharing.share(element, rng)
        point = 2
        evaluations = {index: ring.evaluate(share, point)
                       for index, share in shares.items()}
        assert sharing.combine_evaluations(evaluations, point) == ring.evaluate(
            element, point)

    def test_requires_a_server(self):
        with pytest.raises(SharingError):
            AdditiveMultiServerSharing(FpQuotientRing(5), servers=0)
