"""Tests for the polynomial-tree encoder (§4.1)."""

import pytest

from repro.algebra import FpQuotientRing
from repro.core import PolynomialTree, TagMapping, encode_document, encode_element
from repro.errors import EncodingError
from repro.xmltree import XmlDocument, XmlElement, parse_document


class TestTreeStructure:
    def test_preorder_identifiers(self, paper_tree_fp):
        assert paper_tree_fp.root_id == 0
        assert paper_tree_fp.node_ids() == [0, 1, 2, 3, 4]
        assert [node.parent_id for node in paper_tree_fp.iter_preorder()] == [
            None, 0, 1, 0, 3]

    def test_children_and_parent_navigation(self, paper_tree_fp):
        assert [child.node_id for child in paper_tree_fp.children(0)] == [1, 3]
        assert paper_tree_fp.parent(1).node_id == 0
        assert paper_tree_fp.parent(0) is None

    def test_depths(self, paper_tree_fp):
        assert [paper_tree_fp.depth_of(i) for i in range(5)] == [0, 1, 2, 1, 2]

    def test_subtree_ids(self, paper_tree_fp):
        assert paper_tree_fp.subtree_ids(1) == [1, 2]
        assert paper_tree_fp.subtree_ids(0) == [0, 1, 2, 3, 4]

    def test_postorder(self, paper_tree_fp):
        assert [node.node_id for node in paper_tree_fp.iter_postorder()] == [2, 1, 4, 3, 0]

    def test_structure_export_is_public_only(self, paper_tree_fp):
        structure = paper_tree_fp.structure()
        assert structure[0] == (None, (1, 3))
        assert structure[2] == (1, ())

    def test_unknown_node_rejected(self, paper_tree_fp):
        with pytest.raises(EncodingError):
            paper_tree_fp.node(99)

    def test_manual_construction_errors(self, fp_ring):
        tree = PolynomialTree(fp_ring)
        tree.add_node(0, None, fp_ring.one, 0)
        with pytest.raises(EncodingError):
            tree.add_node(0, None, fp_ring.one, 0)          # duplicate id
        with pytest.raises(EncodingError):
            tree.add_node(2, 5, fp_ring.one, 1)             # unknown parent
        with pytest.raises(EncodingError):
            tree.add_node(3, None, fp_ring.one, 0)          # second root

    def test_empty_tree_root_rejected(self, fp_ring):
        with pytest.raises(EncodingError):
            PolynomialTree(fp_ring).root()


class TestEncodingValues:
    def test_leaf_polynomials_are_linear_factors(self, paper_tree_fp, fp_ring):
        assert paper_tree_fp.polynomial(2) == fp_ring.from_tag_value(4)

    def test_inner_nodes_multiply_children(self, paper_tree_fp, fp_ring):
        client = fp_ring.mul(fp_ring.from_tag_value(2), fp_ring.from_tag_value(4))
        assert paper_tree_fp.polynomial(1) == client
        root = fp_ring.mul(fp_ring.from_tag_value(3), fp_ring.mul(client, client))
        assert paper_tree_fp.polynomial(0) == root

    def test_missing_mapping_detected(self, paper_document, fp_ring):
        with pytest.raises(EncodingError):
            encode_document(paper_document, TagMapping({"client": 2}), fp_ring)

    def test_encode_element_subtree_only(self, paper_document, paper_mapping, fp_ring):
        subtree = encode_element(paper_document.root.children[0], paper_mapping, fp_ring)
        assert len(subtree) == 2
        assert subtree.polynomial(0) == fp_ring.from_coefficients([3, 4, 1])

    def test_single_node_document(self, fp_ring):
        document = XmlDocument(XmlElement("only"))
        tree = encode_document(document, TagMapping({"only": 1}), fp_ring)
        assert len(tree) == 1
        assert tree.polynomial(0) == fp_ring.from_tag_value(1)

    def test_wide_and_deep_shapes(self):
        ring = FpQuotientRing(23)
        mapping = TagMapping({f"t{i}": i + 1 for i in range(20)})
        wide = XmlElement("t0")
        for i in range(1, 15):
            wide.add(f"t{i}")
        wide_tree = encode_element(wide, mapping, ring)
        assert len(wide_tree) == 15

        deep = XmlElement("t0")
        current = deep
        for i in range(1, 15):
            current = current.add(f"t{i}")
        deep_tree = encode_element(deep, mapping, ring)
        assert len(deep_tree) == 15
        # The root polynomial of both shapes contains all 15 roots.
        for i in range(15):
            assert ring.evaluate(wide_tree.polynomial(0), i + 1) == 0
            assert ring.evaluate(deep_tree.polynomial(0), i + 1) == 0

    def test_repeated_tags_multiply_factors(self, fp_ring):
        # <a><a/></a> with map(a)=2: root = (x-2)^2.
        root = XmlElement("a")
        root.add("a")
        tree = encode_element(root, TagMapping({"a": 2}), fp_ring)
        expected = fp_ring.mul(fp_ring.from_tag_value(2), fp_ring.from_tag_value(2))
        assert tree.polynomial(0) == expected

    def test_storage_bits_accumulates(self, paper_tree_fp, fp_ring):
        per_node = fp_ring.element_storage_bits(fp_ring.one)
        assert paper_tree_fp.storage_bits() == 5 * per_node

    def test_root_contains_every_descendant_tag(self, catalog_document):
        from repro.core import choose_fp_ring

        ring = choose_fp_ring(catalog_document)
        mapping = TagMapping.for_tags(catalog_document.distinct_tags(),
                                      max_value=ring.p - 2)
        tree = encode_document(catalog_document, mapping, ring)
        root_poly = tree.polynomial(0)
        for tag in catalog_document.distinct_tags():
            assert ring.evaluate(root_poly, mapping.value(tag)) == 0
