"""Property-based tests (hypothesis) for the algebraic substrate.

These check the ring/field axioms and the paper's core invariants
(Theorem 1/2 recoverability, additive-sharing correctness) over randomly
generated inputs rather than hand-picked examples.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    FpQuotientRing,
    IntQuotientRing,
    Polynomial,
    PrimeField,
    default_int_modulus,
    lagrange_interpolate,
)
from repro.sharing import ShamirScheme, combine_additive, split_additively_n

_PRIMES = [5, 7, 11, 13, 17]

prime_fields = st.sampled_from([PrimeField(p) for p in _PRIMES])
small_ints = st.integers(min_value=-1000, max_value=1000)


@st.composite
def field_polynomials(draw, max_degree=6):
    field = draw(prime_fields)
    coefficients = draw(st.lists(st.integers(min_value=0, max_value=field.p - 1),
                                 max_size=max_degree + 1))
    return Polynomial(coefficients, field)


@st.composite
def same_field_polynomial_pairs(draw, max_degree=6):
    field = draw(prime_fields)
    make = lambda: Polynomial(
        draw(st.lists(st.integers(min_value=0, max_value=field.p - 1),
                      max_size=max_degree + 1)), field)
    return make(), make()


class TestPolynomialRingAxioms:
    @given(same_field_polynomial_pairs())
    def test_addition_commutes(self, pair):
        a, b = pair
        assert a + b == b + a

    @given(same_field_polynomial_pairs())
    def test_multiplication_commutes(self, pair):
        a, b = pair
        assert a * b == b * a

    @given(field_polynomials())
    def test_additive_inverse(self, poly):
        assert (poly + (-poly)).is_zero()

    @given(field_polynomials())
    def test_multiplicative_identity(self, poly):
        assert poly * Polynomial.one(poly.ring) == poly

    @given(same_field_polynomial_pairs(), st.integers(min_value=-50, max_value=50))
    def test_evaluation_is_a_homomorphism(self, pair, point):
        a, b = pair
        field = a.ring
        point = field.canonical(point)
        assert (a + b).evaluate(point) == field.add(a.evaluate(point), b.evaluate(point))
        assert (a * b).evaluate(point) == field.mul(a.evaluate(point), b.evaluate(point))

    @given(same_field_polynomial_pairs())
    def test_division_invariant(self, pair):
        a, b = pair
        if b.is_zero():
            return
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree or r.is_zero()

    @given(st.lists(st.integers(min_value=0, max_value=16), min_size=1, max_size=6))
    def test_from_roots_vanishes_exactly_at_roots(self, roots):
        field = PrimeField(17)
        poly = Polynomial.from_roots(roots, field)
        for root in roots:
            assert poly.evaluate(root) == 0
        for value in range(17):
            if value not in roots:
                assert poly.evaluate(value) != 0


class TestQuotientRingProperties:
    @given(st.sampled_from(_PRIMES), st.data())
    def test_fp_reduction_preserves_evaluation(self, p, data):
        """Reducing modulo x^{p-1}-1 never changes evaluations at non-zero points."""
        ring = FpQuotientRing(p)
        coefficients = data.draw(st.lists(
            st.integers(min_value=0, max_value=p - 1), max_size=2 * p))
        poly = Polynomial(coefficients, ring.field)
        reduced = ring.reduce(poly)
        for point in range(1, p):
            assert poly.evaluate(point) == reduced.evaluate(point)

    @given(st.data())
    def test_int_reduction_preserves_evaluation_mod_r_of_point(self, data):
        ring = IntQuotientRing(default_int_modulus(2))
        coefficients = data.draw(st.lists(small_ints, max_size=6))
        poly = Polynomial(coefficients)
        reduced = ring.reduce(poly)
        for point in (2, 3, 5):
            modulus = ring.evaluation_modulus(point)
            assert poly.evaluate(point) % modulus == reduced.evaluate(point) % modulus

    @given(st.sampled_from(_PRIMES), st.data())
    def test_theorem1_tag_recovery(self, p, data):
        """Theorem 1: the tag value is uniquely recoverable in F_p[x]/(x^{p-1}-1)."""
        ring = FpQuotientRing(p)
        tag = data.draw(st.integers(min_value=1, max_value=p - 2))
        child_tags = data.draw(st.lists(
            st.integers(min_value=1, max_value=p - 2), max_size=4))
        children = [ring.from_tag_value(t) for t in child_tags]
        node = ring.mul(ring.from_tag_value(tag), ring.product(children))
        assert ring.recover_tag(node, children) == tag

    @given(st.data())
    def test_theorem2_tag_recovery(self, data):
        """Theorem 2: the same in Z[x]/(r(x))."""
        ring = IntQuotientRing(default_int_modulus(2))
        tag = data.draw(st.integers(min_value=1, max_value=30))
        child_tags = data.draw(st.lists(
            st.integers(min_value=1, max_value=30), max_size=4))
        children = [ring.from_tag_value(t) for t in child_tags]
        node = ring.mul(ring.from_tag_value(tag), ring.product(children))
        assert ring.recover_tag(node, children) == tag


class TestSharingProperties:
    @given(st.sampled_from(_PRIMES), st.integers(min_value=2, max_value=5),
           st.randoms(use_true_random=False), st.data())
    def test_additive_sharing_roundtrip(self, p, parties, rng, data):
        ring = FpQuotientRing(p)
        coefficients = data.draw(st.lists(
            st.integers(min_value=0, max_value=p - 1), max_size=p - 1))
        element = ring.from_coefficients(coefficients)
        shares = split_additively_n(ring, element, parties, rng)
        assert combine_additive(ring, shares) == element

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=3),
           st.randoms(use_true_random=False))
    def test_shamir_any_threshold_subset_reconstructs(self, secret, threshold, extra, rng):
        field = PrimeField(101)
        parties = threshold + extra
        scheme = ShamirScheme(field, threshold=threshold, parties=parties)
        shares = scheme.share(secret % 101, rng)
        subset = rng.sample(shares, threshold)
        assert scheme.reconstruct(subset) == secret % 101

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=6),
           st.randoms(use_true_random=False))
    def test_lagrange_interpolation_degree_bound(self, values, rng):
        field = PrimeField(101)
        points = [(i + 1, v % 101) for i, v in enumerate(values)]
        poly = lagrange_interpolate(points, field)
        assert poly.degree < len(points)
        for x, y in points:
            assert poly.evaluate(x) == y % 101
