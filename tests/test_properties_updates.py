"""Property-based tests for dynamic updates.

A random sequence of inserts, deletes and renames is applied both to the
outsourced share tree and to a plaintext shadow document; after every step
the share tree must still decode to the shadow and answer lookups exactly
like plaintext XPath.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import PlaintextSearchIndex
from repro.core import (
    QueryEngine,
    LocalServerAdapter,
    TagMapping,
    UpdatableTree,
    choose_fp_ring,
    decode_tree,
    outsource_document,
    reconstruct_tree,
)
from repro.xmltree import XmlDocument, XmlElement

_TAGS = ["alpha", "beta", "gamma", "delta"]
_NEW_TAGS = ["omega", "sigma"]


def _base_document() -> XmlDocument:
    root = XmlElement("root")
    for tag in _TAGS:
        child = root.add(tag)
        child.add(random.Random(hash(tag)).choice(_TAGS))
    return XmlDocument(root)


@st.composite
def edit_scripts(draw):
    """A short random sequence of edit operations."""
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["insert", "delete", "rename"]))
        operations.append((
            kind,
            draw(st.integers(min_value=0, max_value=10 ** 6)),   # target selector
            draw(st.sampled_from(_TAGS + _NEW_TAGS)),             # tag material
        ))
    return operations


_settings = settings(max_examples=20, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


class TestEditSequences:
    @_settings
    @given(edit_scripts())
    def test_share_tree_tracks_plaintext_shadow(self, script):
        document = _base_document()
        ring = choose_fp_ring(len(_TAGS) + len(_NEW_TAGS) + 2)
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=ring.p - 2)
        client, server_tree, _ = outsource_document(
            document, ring=ring, mapping=mapping, seed=b"prop-edit")
        editor = UpdatableTree(client.ring, client.mapping, client.share_generator,
                               server_tree)
        shadow = document.clone()

        # node-id -> shadow element bookkeeping (ids mirror the scheme's ids as
        # long as both sides apply the same structural edits).
        def shadow_elements():
            return list(shadow.iter())

        for kind, selector, tag in script:
            ids = server_tree.node_ids()
            if kind == "insert":
                parent_id = ids[selector % len(ids)]
                parent_index = ids.index(parent_id)
                editor.insert_subtree(parent_id, XmlElement(tag))
                # Mirror on the shadow: same parent position, appended child.
                shadow_parent = self._element_for(shadow, server_tree, parent_id,
                                                  client)
                shadow_parent.add(tag)
            elif kind == "delete":
                # Restrict to leaves so that any element with the same tag path
                # is interchangeable (the edits are compared as path multisets).
                deletable = [node_id for node_id in ids
                             if server_tree.parent_id(node_id) is not None
                             and not server_tree.child_ids(node_id)]
                if not deletable:
                    continue
                target = deletable[selector % len(deletable)]
                shadow_target = self._element_for(shadow, server_tree, target, client)
                editor.delete_subtree(target)
                shadow_target.detach()
            else:  # rename
                leaves = [node_id for node_id in ids
                          if not server_tree.child_ids(node_id)]
                if not leaves:
                    continue
                target = leaves[selector % len(leaves)]
                shadow_target = self._element_for(shadow, server_tree, target, client)
                editor.rename_node(target, tag)
                shadow_target.tag = tag

            # Invariant 1: the share tree decodes to the shadow document.
            decoded = decode_tree(
                reconstruct_tree(client.share_generator, server_tree), client.mapping)
            assert sorted(e.tag for e in decoded.iter()) == \
                sorted(e.tag for e in shadow.iter())

        # Invariant 2: lookups agree with plaintext XPath on the shadow.
        plaintext = PlaintextSearchIndex(shadow)
        engine = QueryEngine(client.ring, client.mapping, client.share_generator,
                             LocalServerAdapter(server_tree))
        for tag in shadow.distinct_tags():
            scheme_paths = sorted(
                client.tag_path_of(server_tree, node_id)
                for node_id in engine.lookup(tag).matches)
            plaintext_paths = sorted(
                element.tag_path()
                for element in shadow.iter() if element.tag == tag)
            assert scheme_paths == plaintext_paths

    @staticmethod
    def _element_for(shadow: XmlDocument, server_tree, node_id: int, client):
        """Locate the shadow element corresponding to a share-tree node.

        The correspondence is by tag path *occurrence order*: both sides list
        nodes with the same tag path in document order, and the k-th share
        node with a given path maps to the k-th shadow element with it.
        """
        target_path = client.tag_path_of(server_tree, node_id)
        same_path_ids = [other for other in server_tree.node_ids()
                         if client.tag_path_of(server_tree, other) == target_path]
        occurrence = same_path_ids.index(node_id)
        candidates = [element for element in shadow.iter()
                      if element.tag_path() == target_path]
        return candidates[occurrence]
