"""Exact reproduction of the paper's worked example (figures 1–6).

These are the tightest checks in the suite: the encoded polynomials, the
share sums and the query evaluation trees must equal the values printed in
the paper.
"""

import pytest

from repro.algebra import Polynomial, ZZ
from repro.core import LocalServerAdapter, encode_document, outsource_document
from repro.workloads import (
    expected_figure2_fp_polynomials,
    expected_figure2_int_polynomials,
    expected_figure5_sums,
    expected_figure6_sums,
    figure1_document,
    figure1_fp_ring,
    figure1_int_ring,
    figure1_mapping,
)


def _polynomials_by_tag_path(document, tree):
    elements = document.elements()
    return {elements[node.node_id].tag_path(): node.polynomial
            for node in tree.iter_preorder()}


class TestFigure1:
    def test_document_shape(self):
        document = figure1_document()
        assert document.size() == 5
        assert document.root.tag == "customers"
        assert [c.tag for c in document.root.children] == ["client", "client"]
        assert all(c.children[0].tag == "name" for c in document.root.children)

    def test_mapping_values(self):
        mapping = figure1_mapping()
        assert mapping.value("client") == 2
        assert mapping.value("customers") == 3
        assert mapping.value("name") == 4

    def test_nonreduced_root_polynomial(self):
        """Figure 1(c): customers = (x-3)((x-2)(x-4))^2 over Z[x]."""
        mapping = figure1_mapping()
        client = Polynomial.from_roots([2, 4], ZZ)
        root = Polynomial.linear_root(3, ZZ) * client * client
        # Expand by evaluating at a few points (uniquely determines degree-5 poly).
        for x in range(-3, 8):
            assert root.evaluate(x) == (x - 3) * ((x - 2) * (x - 4)) ** 2


class TestFigure2:
    def test_fp_polynomials_match_exactly(self):
        document = figure1_document()
        tree = encode_document(document, figure1_mapping(), figure1_fp_ring())
        by_path = _polynomials_by_tag_path(document, tree)
        for path, coefficients in expected_figure2_fp_polynomials().items():
            assert list(by_path[path].coeffs) == coefficients, path

    def test_int_polynomials_match_exactly(self):
        document = figure1_document()
        tree = encode_document(document, figure1_mapping(), figure1_int_ring())
        by_path = _polynomials_by_tag_path(document, tree)
        for path, coefficients in expected_figure2_int_polynomials().items():
            assert list(by_path[path].coeffs) == coefficients, path

    def test_pretty_printing_matches_paper_rendering(self):
        document = figure1_document()
        tree = encode_document(document, figure1_mapping(), figure1_fp_ring())
        assert str(tree.polynomial(0)) == "3x^3 + 3x^2 + 3x + 3"
        assert str(tree.polynomial(1)) == "x^2 + 4x + 3"
        assert str(tree.polynomial(2)) == "x + 1"
        int_tree = encode_document(figure1_document(), figure1_mapping(),
                                   figure1_int_ring())
        assert str(int_tree.polynomial(0)) == "265x + 45"
        assert str(int_tree.polynomial(1)) == "-6x + 7"
        assert str(int_tree.polynomial(2)) == "x - 4"


@pytest.mark.parametrize("ring_factory,expected_sums", [
    (figure1_fp_ring, expected_figure5_sums),
    (figure1_int_ring, expected_figure6_sums),
])
class TestFigures3To6:
    def test_shares_sum_to_figure2(self, ring_factory, expected_sums):
        """Figures 3 and 4: client + server share equals the original polynomial."""
        document = figure1_document()
        ring = ring_factory()
        client, server_tree, tree = outsource_document(
            document, ring=ring, mapping=figure1_mapping(), seed=b"fig34",
            strict=False)
        for node in tree.iter_preorder():
            combined = ring.add(client.share_generator.share_for(node.node_id),
                                server_tree.share_of(node.node_id))
            assert combined == node.polynomial

    def test_query_sum_tree_matches_figure(self, ring_factory, expected_sums):
        """Figures 5 and 6: per-node sums for the query x = 2 (//client)."""
        document = figure1_document()
        ring = ring_factory()
        client, server_tree, tree = outsource_document(
            document, ring=ring, mapping=figure1_mapping(), seed=b"fig56",
            strict=False)
        elements = document.elements()
        point = figure1_mapping().value("client")
        expected = expected_sums()
        generator = client.share_generator
        for node in tree.iter_preorder():
            client_value = ring.evaluate(generator.share_for(node.node_id), point)
            server_value = server_tree.evaluate(node.node_id, point)
            total = ring.evaluation_add(client_value, server_value, point)
            assert total == expected[elements[node.node_id].tag_path()]

    def test_protocol_outcome_matches_figure(self, ring_factory, expected_sums):
        """The dead branches and answers of the //client query match the text."""
        document = figure1_document()
        client, server_tree, _ = outsource_document(
            document, ring=ring_factory(), mapping=figure1_mapping(), seed=b"fig56",
            strict=False)
        adapter = LocalServerAdapter(server_tree)
        outcome = client.lookup(adapter, "client")
        assert outcome.matches == [1, 3]                       # the two client nodes
        assert set(outcome.pruned_nodes) == {2, 4}             # the name leaves are dead
        assert set(outcome.zero_nodes) == {0, 1, 3}
        # The server saw the point x=2 but never a tag name.
        assert adapter.observed_points == [2] * len(set(adapter.observed_points)) or \
            set(adapter.observed_points) == {2}
