"""Property-based round-trips for the binary paged coefficient codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import numpy_or_none
from repro.errors import ProtocolError
from repro.net.pages import (
    DEFAULT_PAGE_BYTES,
    decode_coefficients,
    decode_coefficients_array,
    decode_coefficients_batch,
    encode_coefficients,
    encode_coefficients_array,
    join_pages,
    split_pages,
)

coefficient_vectors = st.lists(
    st.integers(min_value=-(2 ** 96), max_value=2 ** 96), max_size=80)

#: Vectors whose limbs stay within the array decoders' native 64-bit lane
#: (zigzag limbs stop at 62 bits, so magnitudes stay below 2^61).
native_vectors = st.lists(
    st.integers(min_value=-(2 ** 61) + 1, max_value=2 ** 61 - 1), max_size=80)

numpy_present = pytest.mark.skipif(numpy_or_none() is None,
                                   reason="numpy not installed")


class TestCoefficientCodec:
    @given(coefficient_vectors)
    def test_round_trip(self, coeffs):
        assert decode_coefficients(encode_coefficients(coeffs)) == coeffs

    def test_empty_vector(self):
        # The zero polynomial: no coefficients at all.
        assert decode_coefficients(encode_coefficients([])) == []

    def test_constant_share(self):
        assert decode_coefficients(encode_coefficients([7])) == [7]
        assert decode_coefficients(encode_coefficients([-3])) == [-3]

    @given(st.integers(min_value=0, max_value=40))
    def test_all_zero_vector_has_no_payload(self, count):
        blob = encode_coefficients([0] * count)
        assert decode_coefficients(blob) == [0] * count
        # Width-0 limbs: the header alone carries the whole vector.
        assert len(blob) == len(encode_coefficients([]))

    def test_sub_byte_limbs_pack_tightly(self):
        # 52 residues below 53 need 6-bit limbs: 39 payload bytes, not 52.
        coeffs = [i % 53 for i in range(52)]
        blob = encode_coefficients(coeffs)
        assert len(blob) - len(encode_coefficients([])) == (52 * 6 + 7) // 8
        assert decode_coefficients(blob) == coeffs

    def test_truncated_blob_rejected(self):
        blob = encode_coefficients([5, 6, 7])
        with pytest.raises(ProtocolError):
            decode_coefficients(blob[:-1])
        with pytest.raises(ProtocolError):
            decode_coefficients(blob + b"\x00")
        with pytest.raises(ProtocolError):
            decode_coefficients(b"\x01")

    def test_unknown_version_rejected(self):
        blob = encode_coefficients([5, 6, 7])
        with pytest.raises(ProtocolError):
            decode_coefficients(b"\x7f" + blob[1:])

    def test_stray_high_bits_rejected(self):
        blob = bytearray(encode_coefficients([1, 1, 1]))
        blob[-1] |= 0x80          # beyond the announced 3x1-bit payload
        with pytest.raises(ProtocolError):
            decode_coefficients(bytes(blob))


@numpy_present
class TestArrayCodec:
    """The array codecs are byte- and value-identical to the int codec."""

    @settings(max_examples=80, deadline=None)
    @given(native_vectors)
    def test_array_decode_matches_reference(self, coeffs):
        blob = encode_coefficients(coeffs)
        decoded = decode_coefficients_array(blob)
        assert decoded is not None
        assert decoded.tolist() == decode_coefficients(blob) == coeffs

    @settings(max_examples=80, deadline=None)
    @given(native_vectors)
    def test_array_encode_is_byte_identical(self, coeffs):
        np = numpy_or_none()
        values = np.asarray(coeffs, dtype=np.int64)
        assert encode_coefficients_array(values) == encode_coefficients(coeffs)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(native_vectors, max_size=12))
    def test_batch_decode_matches_per_blob(self, vectors):
        blobs = [encode_coefficients(coeffs) for coeffs in vectors]
        rows = decode_coefficients_batch(blobs)
        assert rows is not None
        assert [row.tolist() for row in rows] == vectors

    def test_byte_aligned_and_odd_widths(self):
        # 8/16-bit limbs take the frombuffer view; 6- and 13-bit limbs the
        # vectorized unpackbits path.  All four must agree with reference.
        for values in ([255, 1, 128], [65535, 256, 3],
                       [i % 53 for i in range(52)], [4097, 8000, 1]):
            blob = encode_coefficients(values)
            assert decode_coefficients_array(blob).tolist() == values

    def test_empty_and_all_zero_vectors(self):
        assert decode_coefficients_array(encode_coefficients([])).tolist() == []
        assert decode_coefficients_array(
            encode_coefficients([0] * 9)).tolist() == [0] * 9

    def test_zigzag_negative_values(self):
        values = [-1, 0, 7, -128, 2 ** 40, -(2 ** 40)]
        blob = encode_coefficients(values)
        assert decode_coefficients_array(blob).tolist() == values
        np = numpy_or_none()
        assert encode_coefficients_array(
            np.asarray(values, dtype=np.int64)) == blob

    def test_wide_limbs_fall_back_to_none(self):
        blob = encode_coefficients([2 ** 90])
        assert decode_coefficients_array(blob) is None
        # One wide blob sends the whole batch back to the reference path.
        narrow = encode_coefficients([1, 2, 3])
        assert decode_coefficients_batch([narrow, blob]) is None
        assert decode_coefficients_batch([narrow]) is not None

    def test_wide_encode_falls_back_to_reference(self):
        # Magnitudes at/beyond 2^62 cannot zigzag in int64; the array
        # encoder must route them through the int codec, not overflow.
        np = numpy_or_none()
        values = np.asarray([-(2 ** 62), 5], dtype=np.int64)
        assert (encode_coefficients_array(values)
                == encode_coefficients([-(2 ** 62), 5]))
        assert (encode_coefficients_array([2 ** 90, -1])
                == encode_coefficients([2 ** 90, -1]))

    def test_corruption_still_raises(self):
        blob = encode_coefficients([5, 6, 7])
        with pytest.raises(ProtocolError):
            decode_coefficients_array(blob[:-1])
        with pytest.raises(ProtocolError):
            decode_coefficients_batch([blob, blob[:-1]])
        stray = bytearray(encode_coefficients([1, 1, 1]))
        stray[-1] |= 0x80
        with pytest.raises(ProtocolError):
            decode_coefficients_array(bytes(stray))


class TestPaging:
    @settings(max_examples=60)
    @given(coefficient_vectors, st.integers(min_value=1, max_value=64))
    def test_split_join_round_trip(self, coeffs, page_bytes):
        blob = encode_coefficients(coeffs)
        pages = split_pages(blob, page_bytes)
        assert all(len(page) <= page_bytes for page in pages)
        assert all(pages[:-1]) and len(pages[-1]) > 0
        assert join_pages(pages) == blob
        assert decode_coefficients(join_pages(pages)) == coeffs

    def test_single_page_for_small_blobs(self):
        blob = encode_coefficients(list(range(20)))
        assert split_pages(blob, DEFAULT_PAGE_BYTES) == [blob]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ProtocolError):
            split_pages(b"")
        with pytest.raises(ProtocolError):
            split_pages(b"x", 0)
        with pytest.raises(ProtocolError):
            join_pages([])
