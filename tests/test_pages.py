"""Property-based round-trips for the binary paged coefficient codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.pages import (
    DEFAULT_PAGE_BYTES,
    decode_coefficients,
    encode_coefficients,
    join_pages,
    split_pages,
)

coefficient_vectors = st.lists(
    st.integers(min_value=-(2 ** 96), max_value=2 ** 96), max_size=80)


class TestCoefficientCodec:
    @given(coefficient_vectors)
    def test_round_trip(self, coeffs):
        assert decode_coefficients(encode_coefficients(coeffs)) == coeffs

    def test_empty_vector(self):
        # The zero polynomial: no coefficients at all.
        assert decode_coefficients(encode_coefficients([])) == []

    def test_constant_share(self):
        assert decode_coefficients(encode_coefficients([7])) == [7]
        assert decode_coefficients(encode_coefficients([-3])) == [-3]

    @given(st.integers(min_value=0, max_value=40))
    def test_all_zero_vector_has_no_payload(self, count):
        blob = encode_coefficients([0] * count)
        assert decode_coefficients(blob) == [0] * count
        # Width-0 limbs: the header alone carries the whole vector.
        assert len(blob) == len(encode_coefficients([]))

    def test_sub_byte_limbs_pack_tightly(self):
        # 52 residues below 53 need 6-bit limbs: 39 payload bytes, not 52.
        coeffs = [i % 53 for i in range(52)]
        blob = encode_coefficients(coeffs)
        assert len(blob) - len(encode_coefficients([])) == (52 * 6 + 7) // 8
        assert decode_coefficients(blob) == coeffs

    def test_truncated_blob_rejected(self):
        blob = encode_coefficients([5, 6, 7])
        with pytest.raises(ProtocolError):
            decode_coefficients(blob[:-1])
        with pytest.raises(ProtocolError):
            decode_coefficients(blob + b"\x00")
        with pytest.raises(ProtocolError):
            decode_coefficients(b"\x01")

    def test_unknown_version_rejected(self):
        blob = encode_coefficients([5, 6, 7])
        with pytest.raises(ProtocolError):
            decode_coefficients(b"\x7f" + blob[1:])

    def test_stray_high_bits_rejected(self):
        blob = bytearray(encode_coefficients([1, 1, 1]))
        blob[-1] |= 0x80          # beyond the announced 3x1-bit payload
        with pytest.raises(ProtocolError):
            decode_coefficients(bytes(blob))


class TestPaging:
    @settings(max_examples=60)
    @given(coefficient_vectors, st.integers(min_value=1, max_value=64))
    def test_split_join_round_trip(self, coeffs, page_bytes):
        blob = encode_coefficients(coeffs)
        pages = split_pages(blob, page_bytes)
        assert all(len(page) <= page_bytes for page in pages)
        assert all(pages[:-1]) and len(pages[-1]) > 0
        assert join_pages(pages) == blob
        assert decode_coefficients(join_pages(pages)) == coeffs

    def test_single_page_for_small_blobs(self):
        blob = encode_coefficients(list(range(20)))
        assert split_pages(blob, DEFAULT_PAGE_BYTES) == [blob]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ProtocolError):
            split_pages(b"")
        with pytest.raises(ProtocolError):
            split_pages(b"x", 0)
        with pytest.raises(ProtocolError):
            join_pages([])
