"""Tests for the private tag mapping."""

import random

import pytest

from repro.core import TagMapping
from repro.errors import MappingCapacityError, MappingError, UnknownTagError


class TestAssignment:
    def test_basic_assignment_and_lookup(self):
        mapping = TagMapping({"a": 1, "b": 2})
        assert mapping.value("a") == 1
        assert mapping.tag(2) == "b"
        assert "a" in mapping and "c" not in mapping
        assert len(mapping) == 2

    def test_unknown_lookups(self):
        mapping = TagMapping({"a": 1})
        with pytest.raises(UnknownTagError):
            mapping.value("missing")
        with pytest.raises(UnknownTagError):
            mapping.tag(9)

    def test_invertibility_enforced(self):
        mapping = TagMapping({"a": 1})
        with pytest.raises(MappingError):
            mapping.assign("b", 1)                     # value reuse
        with pytest.raises(MappingError):
            mapping.assign("a", 2)                     # re-mapping a tag
        mapping.assign("a", 1)                         # idempotent re-assign is fine

    def test_zero_and_negative_rejected(self):
        with pytest.raises(MappingError):
            TagMapping({"a": 0})
        with pytest.raises(MappingError):
            TagMapping({"a": -3})

    def test_max_value_enforced(self):
        mapping = TagMapping(max_value=3)
        mapping.assign("a", 3)
        with pytest.raises(MappingError):
            mapping.assign("b", 4)

    def test_empty_tag_rejected(self):
        with pytest.raises(MappingError):
            TagMapping({"": 1})


class TestForTags:
    def test_sequential_assignment(self):
        mapping = TagMapping.for_tags(["b", "a", "c"])
        assert mapping.as_dict() == {"a": 1, "b": 2, "c": 3}

    def test_random_permutation(self):
        mapping = TagMapping.for_tags(["a", "b", "c"], max_value=10,
                                      rng=random.Random(1))
        values = set(mapping.as_dict().values())
        assert len(values) == 3
        assert all(1 <= v <= 10 for v in values)

    def test_capacity_check(self):
        with pytest.raises(MappingCapacityError):
            TagMapping.for_tags(["a", "b", "c"], max_value=2)

    def test_duplicates_collapse(self):
        mapping = TagMapping.for_tags(["a", "a", "b"])
        assert len(mapping) == 2

    def test_paper_figure1b(self):
        mapping = TagMapping({"client": 2, "customers": 3, "name": 4}, max_value=4)
        assert mapping.value("client") == 2
        assert mapping.value("customers") == 3
        assert mapping.value("name") == 4


class TestExtend:
    def test_fills_free_values(self):
        mapping = TagMapping({"a": 2})
        mapping.extend(["b", "c"])
        values = mapping.as_dict()
        assert values["a"] == 2
        assert len(set(values.values())) == 3

    def test_extend_respects_capacity(self):
        mapping = TagMapping({"a": 1, "b": 2}, max_value=2)
        with pytest.raises(MappingCapacityError):
            mapping.extend(["c"])

    def test_extend_is_idempotent(self):
        mapping = TagMapping({"a": 1})
        mapping.extend(["a"])
        assert mapping.as_dict() == {"a": 1}


class TestPersistence:
    def test_json_roundtrip(self):
        mapping = TagMapping({"a": 3, "b": 7}, max_value=10, strict=True)
        restored = TagMapping.from_json(mapping.to_json())
        assert restored.as_dict() == mapping.as_dict()
        assert restored.max_value == 10
        assert restored.strict is True

    def test_tags_and_values_sorted(self):
        mapping = TagMapping({"z": 5, "a": 2})
        assert mapping.tags() == ["a", "z"]
        assert mapping.values() == [2, 5]
