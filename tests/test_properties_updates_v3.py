"""Property tests for the v3 update wire protocol.

Two families:

* **Wire round-trips** — every hypothesis-generated
  ``UpdateRequest``/``UpdateResponse``/``ConflictResponse`` must survive
  ``decode_message(message.encode())`` bit-identically (deterministic
  encodings, integer coercion, sorted conflict lists).
* **Remote/local equivalence** — a random edit script applied through
  :class:`~repro.net.client.RemoteUpdatableTree` over the in-process
  channel leaves the hosted store bit-identical, after every step, to
  the same script applied by an in-process
  :class:`~repro.core.UpdatableTree` on an identically seeded clone.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    TagMapping,
    UpdatableTree,
    choose_fp_ring,
    outsource_document,
)
from repro.net import (
    ConflictResponse,
    RemoteUpdatableTree,
    SearchServer,
    UpdateRequest,
    UpdateResponse,
    connect,
    share_tree_from_dict,
    share_tree_to_dict,
)
from repro.net.messages import decode_message
from repro.xmltree import XmlDocument, XmlElement

_settings = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

node_ids = st.integers(min_value=0, max_value=10 ** 9)
versions = st.integers(min_value=0, max_value=10 ** 6)
coeffs = st.lists(st.integers(min_value=0, max_value=10 ** 9), max_size=8)


@st.composite
def update_ops(draw):
    kind = draw(st.sampled_from(["add", "replace", "remove"]))
    if kind == "add":
        return ["add", draw(node_ids), draw(node_ids), draw(coeffs)]
    if kind == "replace":
        return ["replace", draw(node_ids), draw(coeffs)]
    return ["remove", draw(node_ids),
            draw(st.lists(node_ids, min_size=1, max_size=6))]


class TestWireRoundTrips:
    @_settings
    @given(st.text(min_size=1, max_size=12), st.lists(update_ops(), max_size=6),
           st.dictionaries(node_ids, versions, max_size=6))
    def test_update_request_round_trip(self, operation, ops, base):
        request = UpdateRequest(operation, ops, base)
        decoded = decode_message(request.encode())
        assert isinstance(decoded, UpdateRequest)
        assert decoded.encode() == request.encode()
        assert decoded.operation == operation
        assert decoded.ops == request.ops
        assert decoded.base_versions == base

    @_settings
    @given(st.dictionaries(node_ids, versions, max_size=8),
           st.integers(min_value=0, max_value=100))
    def test_update_response_round_trip(self, version_map, applied):
        response = UpdateResponse(version_map, applied)
        decoded = decode_message(response.encode())
        assert isinstance(decoded, UpdateResponse)
        assert decoded.encode() == response.encode()
        assert decoded.versions == version_map
        assert decoded.applied == applied

    @_settings
    @given(st.lists(node_ids, max_size=8),
           st.dictionaries(node_ids, versions, max_size=8))
    def test_conflict_response_round_trip(self, conflicts, version_map):
        response = ConflictResponse(conflicts, version_map)
        decoded = decode_message(response.encode())
        assert isinstance(decoded, ConflictResponse)
        assert decoded.encode() == response.encode()
        # Conflict ids are canonicalised: sorted on construction, so the
        # encoding is deterministic whatever order the handler found them.
        assert decoded.conflicts == sorted(conflicts)
        assert decoded.versions == version_map

    @_settings
    @given(st.lists(update_ops(), max_size=4),
           st.dictionaries(node_ids, versions, max_size=4))
    def test_encoding_is_deterministic(self, ops, base):
        first = UpdateRequest("op", ops, base).encode()
        second = UpdateRequest("op", list(ops), dict(base)).encode()
        assert first == second


_TAGS = ["alpha", "beta", "gamma", "delta"]
_NEW_TAGS = ["omega", "sigma"]


def _base_document() -> XmlDocument:
    root = XmlElement("root")
    for tag in _TAGS:
        child = root.add(tag)
        child.add(_TAGS[(ord(tag[0]) + 1) % len(_TAGS)])
    return XmlDocument(root)


@st.composite
def edit_scripts(draw):
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        operations.append((
            draw(st.sampled_from(["insert", "delete", "rename"])),
            draw(st.integers(min_value=0, max_value=10 ** 6)),
            draw(st.sampled_from(_TAGS + _NEW_TAGS)),
        ))
    return operations


def _store_state(store):
    return {
        node_id: (store.parent_id(node_id),
                  tuple(store.child_ids(node_id)),
                  tuple(store.share_of(node_id).coeffs))
        for node_id in store.node_ids()
    }


class TestRemoteSequencesMatchLocal:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(edit_scripts())
    def test_remote_script_bit_identical_to_local(self, script):
        document = _base_document()
        ring = choose_fp_ring(len(_TAGS) + len(_NEW_TAGS) + 2)
        mapping = TagMapping.for_tags(document.distinct_tags(),
                                      max_value=ring.p - 2)
        client, hosted, _ = outsource_document(document, ring=ring,
                                               mapping=mapping,
                                               seed=b"prop-v3")
        reference = share_tree_from_dict(share_tree_to_dict(hosted))
        local = UpdatableTree(client.ring, client.mapping,
                              client.share_generator, reference)
        server = SearchServer(hosted)
        adapter, _ = connect(server)
        remote = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator)

        applied = 0
        for kind, selector, tag in script:
            # Targets are chosen from the reference clone; both stores are
            # bit-identical at every step, so the choice is shared.
            ids = reference.node_ids()
            if kind == "insert":
                parent_id = ids[selector % len(ids)]
                local.insert_subtree(parent_id, XmlElement(tag))
                remote.insert_subtree(parent_id, XmlElement(tag))
            elif kind == "delete":
                deletable = [node_id for node_id in ids
                             if reference.parent_id(node_id) is not None]
                if not deletable:
                    continue
                target = deletable[selector % len(deletable)]
                local.delete_subtree(target)
                remote.delete_subtree(target)
            else:
                target = ids[selector % len(ids)]
                local.rename_node(target, tag)
                remote.rename_node(target, tag)
            applied += 1
            assert _store_state(hosted) == _store_state(reference)

        # A single writer never needed to rebase, and every remote batch
        # was committed (and logged) exactly once.
        assert remote.rebases == 0
        log = server.document().update_log
        assert len(log) == applied
        assert all(count >= 1 for _, _, count in log)
