"""Tests for the element-lookup protocol (§4.3): pruning, soundness,
completeness and verification modes."""

import pytest

from repro.baselines import PlaintextSearchIndex
from repro.core import (
    LocalServerAdapter,
    QueryEngine,
    QueryStats,
    TagMapping,
    VerificationMode,
    choose_fp_ring,
    choose_int_ring,
    encode_document,
    outsource_document,
    share_tree,
)
from repro.errors import UnknownTagError, VerificationError
from repro.prg import DeterministicPRG
from repro.workloads import (
    RandomXmlConfig,
    figure1_document,
    figure1_mapping,
    generate_random_document,
)


@pytest.fixture(params=["fp", "int"])
def paper_setup(request, paper_document, paper_mapping):
    ring = choose_fp_ring(3, strict=False) if request.param == "fp" else choose_int_ring(2)
    client, server_tree, tree = outsource_document(
        paper_document, ring=ring, mapping=figure1_mapping(), seed=b"lookup-seed",
        strict=False)
    return client, server_tree, tree


class TestElementLookup:
    def test_paper_query_client(self, paper_setup):
        client, server_tree, _ = paper_setup
        outcome = client.lookup(server_tree, "client")
        assert outcome.matches == [1, 3]
        assert set(outcome.zero_nodes) == {0, 1, 3}
        assert set(outcome.pruned_nodes) == {2, 4}

    def test_paper_query_name_leaves(self, paper_setup):
        client, server_tree, _ = paper_setup
        outcome = client.lookup(server_tree, "name")
        assert outcome.matches == [2, 4]
        # The whole tree is alive for 'name' descent (all ancestors contain it).
        assert outcome.pruned_nodes == []

    def test_paper_query_root(self, paper_setup):
        client, server_tree, _ = paper_setup
        outcome = client.lookup(server_tree, "customers")
        assert outcome.matches == [0]
        # The root is zero, its children are not, so they are pruned.
        assert set(outcome.pruned_nodes) == {1, 3}

    def test_unknown_tag_rejected(self, paper_setup):
        client, server_tree, _ = paper_setup
        with pytest.raises(UnknownTagError):
            client.lookup(server_tree, "nonexistent")

    def test_matches_agree_with_plaintext_on_catalog(self, outsourced_catalog,
                                                     catalog_document):
        client, server_tree, _ = outsourced_catalog
        plaintext = PlaintextSearchIndex(catalog_document)
        for tag in catalog_document.distinct_tags():
            assert client.lookup(server_tree, tag).matches == plaintext.lookup(tag).matches

    def test_pruning_never_visits_subtrees_without_matches(self, outsourced_catalog,
                                                           catalog_document):
        client, server_tree, tree = outsourced_catalog
        plaintext = PlaintextSearchIndex(catalog_document)
        for tag in ["order", "balance", "warehouse"]:
            outcome = client.lookup(server_tree, tag)
            matches = set(plaintext.lookup(tag).matches)
            # Soundness of pruning: no pruned node's subtree contains a match.
            for pruned in outcome.pruned_nodes:
                assert not matches.intersection(tree.subtree_ids(pruned))
            # The search touched at most the live region plus one pruned layer.
            assert outcome.stats.nodes_evaluated <= catalog_document.size()

    def test_selective_queries_touch_less_of_the_tree(self, outsourced_catalog,
                                                      catalog_document):
        client, server_tree, _ = outsourced_catalog
        rare = client.lookup(server_tree, "location")        # only in warehouses
        common = client.lookup(server_tree, "product")       # everywhere
        assert rare.stats.nodes_evaluated < common.stats.nodes_evaluated
        assert rare.stats.nodes_evaluated < catalog_document.size()

    def test_stats_accounting_consistency(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        outcome = client.lookup(server_tree, "customer")
        stats = outcome.stats
        assert stats.points_sent == 1
        assert stats.nodes_evaluated > 0
        assert stats.round_trips > 0
        assert stats.evaluations >= stats.nodes_evaluated
        merged = QueryStats().merge(stats).merge(stats)
        assert merged.evaluations == 2 * stats.evaluations
        assert "nodes_evaluated" in stats.as_dict()


class TestVerificationModes:
    def test_full_verification_confirms_nested_candidates(self):
        # <a><a><b/></a></a>: querying 'a' yields nested zero nodes that need
        # Theorem-1 verification to classify.
        from repro.xmltree import parse_document

        document = parse_document("<a><a><b/></a><c/></a>")
        client, server_tree, _ = outsource_document(
            document, seed=b"nested", verification=VerificationMode.FULL)
        outcome = client.lookup(server_tree, "a")
        assert outcome.matches == [0, 1]
        assert outcome.unverified_candidates == []

    def test_none_mode_reports_candidates(self):
        from repro.xmltree import parse_document

        document = parse_document("<a><a><b/></a><c/></a>")
        client, server_tree, _ = outsource_document(document, seed=b"nested")
        outcome = client.lookup(server_tree, "a", verification=VerificationMode.NONE)
        # The deepest zero (node 1) is exact in F_p; its ancestor stays a candidate.
        assert 1 in outcome.matches
        assert 0 in outcome.unverified_candidates
        assert sorted(outcome.all_answers()) == [0, 1]

    def test_constant_only_mode_never_misses_answers(self, paper_document):
        """Trusted-server mode may over-report (unverified candidates) but its
        confirmed matches are correct and no true answer is lost."""
        client, server_tree, _ = outsource_document(
            paper_document, mapping=figure1_mapping(), seed=b"const", strict=False)
        for tag in ("client", "customers", "name"):
            outcome = client.lookup(server_tree, tag,
                                    verification=VerificationMode.CONSTANT_ONLY)
            truth = set(PlaintextSearchIndex(paper_document).lookup(tag).matches)
            assert truth <= set(outcome.all_answers())
            assert set(outcome.matches) <= truth

    def test_constant_only_transfers_fewer_coefficients(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        full = client.lookup(server_tree, "customer",
                             verification=VerificationMode.FULL)
        constant = client.lookup(server_tree, "customer",
                                 verification=VerificationMode.CONSTANT_ONLY)
        assert constant.stats.polynomials_fetched == 0
        assert full.stats.polynomials_fetched > 0

    def test_malicious_server_detected_by_full_verification(self, paper_document):
        """A server that corrupts a share polynomial cannot slip a wrong
        answer past FULL verification."""
        ring = choose_fp_ring(3, strict=False)
        mapping = figure1_mapping()
        tree = encode_document(paper_document, mapping, ring)
        prg = DeterministicPRG(b"tamper")
        client_gen, server_tree = share_tree(tree, prg)
        # Corrupt the root share with a polynomial that still vanishes at the
        # query point x=2 (so the branch is not simply pruned) but breaks the
        # encoding invariant f = (x - t) * prod(children).
        server_tree.shares[0] = ring.add(server_tree.shares[0],
                                         ring.from_tag_value(2))
        engine = QueryEngine(ring, mapping, client_gen,
                             LocalServerAdapter(server_tree),
                             VerificationMode.FULL)
        with pytest.raises(VerificationError):
            engine.lookup("client")


class TestLookupAcrossRandomDocuments:
    @pytest.mark.parametrize("seed", range(4))
    def test_fp_ring_matches_ground_truth(self, seed):
        document = generate_random_document(
            RandomXmlConfig(element_count=50, tag_vocabulary_size=7, seed=seed))
        client, server_tree, _ = outsource_document(document, seed=b"rand")
        plaintext = PlaintextSearchIndex(document)
        for tag in document.distinct_tags():
            assert client.lookup(server_tree, tag).matches == plaintext.lookup(tag).matches

    @pytest.mark.parametrize("seed", range(2))
    def test_int_ring_matches_ground_truth(self, seed):
        document = generate_random_document(
            RandomXmlConfig(element_count=35, tag_vocabulary_size=6, seed=seed + 50))
        client, server_tree, _ = outsource_document(
            document, ring=choose_int_ring(2), seed=b"rand-int")
        plaintext = PlaintextSearchIndex(document)
        for tag in document.distinct_tags():
            assert client.lookup(server_tree, tag).matches == plaintext.lookup(tag).matches
