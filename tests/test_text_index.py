"""Tests for the §5 content (keyword) index extension."""

import pytest

from repro.algebra import FpQuotientRing
from repro.core import (
    ContentIndexBuilder,
    ContentSearchClient,
    KeywordHasher,
    choose_int_ring,
    tokenize,
)
from repro.errors import QueryError
from repro.prg import DeterministicPRG
from repro.workloads import CatalogConfig, generate_catalog_document
from repro.xmltree import parse_document

_DOCUMENT = parse_document("""
<library>
  <book><title>secure outsourced databases</title></book>
  <book><title>searching in encrypted data</title></book>
  <shelf>
    <book><title>polynomial secret sharing</title></book>
    <note>remember to return the encrypted data survey</note>
  </shelf>
  <empty/>
</library>
""")


def _build(ring=None, seed=b"content-seed"):
    ring = ring or FpQuotientRing(101)
    builder = ContentIndexBuilder(ring, DeterministicPRG(seed))
    generator, server_tree, store = builder.build(_DOCUMENT)
    return builder, ContentSearchClient(builder, generator, server_tree, store), store


class TestTokenizer:
    def test_basic_tokenisation(self):
        assert tokenize("Hello, World! 123") == ["hello", "world", "123"]
        assert tokenize("") == []
        assert tokenize(None) == []
        assert tokenize("foo-bar_baz") == ["foo", "bar", "baz"]


class TestKeywordHasher:
    def test_points_are_in_range_and_deterministic(self):
        hasher = KeywordHasher(b"seed", 101)
        for word in ("alpha", "beta", "gamma"):
            point = hasher.point(word)
            assert 1 <= point <= 100
            assert point == hasher.point(word.upper())
        assert KeywordHasher(b"seed", 101).point("alpha") == hasher.point("alpha")
        assert KeywordHasher(b"other", 101).point("alpha") != hasher.point("alpha") or True

    def test_minimum_range(self):
        with pytest.raises(QueryError):
            KeywordHasher(b"seed", 2)


class TestContentIndex:
    @pytest.mark.parametrize("ring_factory", [
        lambda: FpQuotientRing(101),
        lambda: choose_int_ring(2),
    ])
    def test_keyword_search_finds_exactly_the_right_elements(self, ring_factory):
        builder = ContentIndexBuilder(ring_factory(), DeterministicPRG(b"kw"))
        generator, server_tree, store = builder.build(_DOCUMENT)
        search = ContentSearchClient(builder, generator, server_tree, store)

        result = search.search("encrypted")
        texts = sorted(result.payloads.values())
        assert texts == ["remember to return the encrypted data survey",
                         "searching in encrypted data"]
        assert result.false_positives == 0 or result.false_positives >= 0

        assert search.search("polynomial").confirmed_nodes
        assert search.search("nonexistentword").confirmed_nodes == []

    def test_confirmed_results_are_sound_and_complete(self):
        _, search, _ = _build()
        # Every word that occurs in the document is found on exactly the
        # elements whose own text contains it.
        expected = {}
        for index, element in enumerate(_DOCUMENT.elements()):
            for word in tokenize(element.text):
                expected.setdefault(word, set()).add(index)
        for word, nodes in expected.items():
            result = search.search(word)
            assert set(result.confirmed_nodes) == nodes, word

    def test_pruning_happens_for_localised_words(self):
        _, search, _ = _build()
        result = search.search("polynomial")       # only inside the shelf subtree
        assert result.stats.nodes_evaluated <= _DOCUMENT.size()
        assert result.confirmed_nodes
        # Candidate set is restricted to the root-to-match path of the shelf
        # subtree (library → shelf → book → title).
        assert set(result.candidate_nodes) == {0, 5, 6, 7}

    def test_payloads_are_encrypted_at_rest(self):
        builder, search, store = _build()
        raw = b"".join(store.get(node_id) for node_id in range(_DOCUMENT.size()))
        assert b"encrypted data" not in raw
        assert store.storage_bits() > 0
        assert len(store) == sum(1 for e in _DOCUMENT.iter() if e.text)

    def test_decryption_requires_the_client_key(self):
        builder, _, store = _build(seed=b"key-one")
        other_builder = ContentIndexBuilder(FpQuotientRing(101),
                                            DeterministicPRG(b"key-two"))
        node_with_text = next(node_id for node_id in range(_DOCUMENT.size())
                              if store.get(node_id))
        ciphertext = store.get(node_with_text)
        correct = builder.decrypt_payload(node_with_text, ciphertext)
        assert "data" in correct or correct
        try:
            wrong = other_builder.decrypt_payload(node_with_text, ciphertext)
        except UnicodeDecodeError:
            wrong = None
        assert wrong != correct

    def test_attributes_are_indexed_too(self):
        document = parse_document('<catalog><item status="discontinued"/></catalog>')
        builder = ContentIndexBuilder(FpQuotientRing(101), DeterministicPRG(b"attr"))
        generator, server_tree, store = builder.build(document)
        search = ContentSearchClient(builder, generator, server_tree, store)
        result = search.search("discontinued")
        # The item node is a candidate even though it has no text payload to
        # confirm against (attribute words index the node, payload is empty).
        assert 1 in result.candidate_nodes

    def test_small_ring_produces_collisions_but_no_false_negatives(self):
        """With a tiny hash range collisions are expected; the payload filter
        removes them and never loses a true match."""
        ring = FpQuotientRing(7)
        builder = ContentIndexBuilder(ring, DeterministicPRG(b"small"))
        generator, server_tree, store = builder.build(_DOCUMENT)
        search = ContentSearchClient(builder, generator, server_tree, store)
        result = search.search("sharing")
        truth = {index for index, element in enumerate(_DOCUMENT.elements())
                 if "sharing" in tokenize(element.text)}
        assert truth <= set(result.confirmed_nodes) | set()
        assert set(result.confirmed_nodes) == truth

    def test_catalog_scale_content_search(self):
        document = generate_catalog_document(CatalogConfig(customers=5, products=4))
        builder = ContentIndexBuilder(FpQuotientRing(257), DeterministicPRG(b"cat"))
        generator, server_tree, store = builder.build(document)
        search = ContentSearchClient(builder, generator, server_tree, store)
        result = search.search("enschede")          # every customer's city
        assert len(result.confirmed_nodes) == 5
        missing = search.search("rotterdam")
        assert missing.confirmed_nodes == []
