"""Tests for tag recovery / decoding (Theorems 1 and 2)."""

import pytest

from repro.core import (
    TagMapping,
    decode_tree,
    encode_document,
    recover_all_tag_values,
    recover_tag_value,
    verify_node_claim,
)
from repro.core.encoder import PolynomialTree
from repro.errors import TagRecoveryError, VerificationError
from repro.workloads import generate_catalog_document, generate_random_document
from repro.workloads.random_xml import RandomXmlConfig


class TestRecovery:
    def test_paper_example_values(self, paper_tree_fp):
        values = recover_all_tag_values(paper_tree_fp)
        assert values == {0: 3, 1: 2, 2: 4, 3: 2, 4: 4}

    def test_paper_example_values_int_ring(self, paper_tree_int):
        values = recover_all_tag_values(paper_tree_int)
        assert values == {0: 3, 1: 2, 2: 4, 3: 2, 4: 4}

    def test_single_node(self, paper_tree_fp):
        assert recover_tag_value(paper_tree_fp, 2) == 4

    def test_decoding_rebuilds_document_structure(self, paper_document, paper_mapping,
                                                  paper_tree_fp):
        decoded = decode_tree(paper_tree_fp, paper_mapping)
        assert [e.tag for e in decoded.iter()] == [e.tag for e in paper_document.iter()]
        assert decoded.size() == paper_document.size()

    def test_decoding_empty_tree_rejected(self, fp_ring, paper_mapping):
        with pytest.raises(TagRecoveryError):
            decode_tree(PolynomialTree(fp_ring), paper_mapping)

    @pytest.mark.parametrize("ring_name", ["fp", "int"])
    def test_losslessness_on_larger_documents(self, ring_name):
        from repro.core import choose_fp_ring, choose_int_ring

        document = generate_random_document(
            RandomXmlConfig(element_count=60, tag_vocabulary_size=8, seed=17))
        if ring_name == "fp":
            ring = choose_fp_ring(document)
        else:
            ring = choose_int_ring(2)
        mapping = TagMapping.for_tags(document.distinct_tags(),
                                      max_value=None if ring_name == "int" else ring.p - 2)
        tree = encode_document(document, mapping, ring)
        decoded = decode_tree(tree, mapping)
        assert [e.tag for e in decoded.iter()] == [e.tag for e in document.iter()]

    def test_losslessness_catalog(self):
        from repro.core import choose_fp_ring

        document = generate_catalog_document()
        ring = choose_fp_ring(document)
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=ring.p - 2)
        tree = encode_document(document, mapping, ring)
        assert [e.tag for e in decode_tree(tree, mapping).iter()] == [
            e.tag for e in document.iter()]


class TestVerification:
    def test_correct_claim_accepted(self, paper_tree_fp, fp_ring):
        node = paper_tree_fp.node(1)
        children = [c.polynomial for c in paper_tree_fp.children(1)]
        assert verify_node_claim(fp_ring, node.polynomial, children, 2)
        assert not verify_node_claim(fp_ring, node.polynomial, children, 3)

    def test_tampered_polynomial_detected(self, paper_tree_fp, fp_ring):
        node = paper_tree_fp.node(1)
        children = [c.polynomial for c in paper_tree_fp.children(1)]
        tampered = fp_ring.add(node.polynomial, fp_ring.one)
        with pytest.raises(VerificationError):
            verify_node_claim(fp_ring, tampered, children, 2)
