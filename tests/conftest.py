"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.algebra import FpQuotientRing, IntQuotientRing, PrimeField, default_int_modulus
from repro.core import TagMapping, encode_document, outsource_document
from repro.prg import DeterministicPRG
from repro.workloads import (
    CatalogConfig,
    RandomXmlConfig,
    figure1_document,
    figure1_fp_ring,
    figure1_int_ring,
    figure1_mapping,
    generate_catalog_document,
    generate_random_document,
)


@pytest.fixture
def rng():
    """A deterministic Random instance."""
    return random.Random(0xDECAF)


@pytest.fixture
def f5():
    """The paper's prime field F_5."""
    return PrimeField(5)


@pytest.fixture
def f101():
    """A slightly larger prime field."""
    return PrimeField(101)


@pytest.fixture
def fp_ring():
    """The paper's F_5[x]/(x^4 - 1) ring."""
    return figure1_fp_ring()


@pytest.fixture
def int_ring():
    """The paper's Z[x]/(x^2 + 1) ring."""
    return figure1_int_ring()


@pytest.fixture
def paper_document():
    """The figure-1(a) document."""
    return figure1_document()


@pytest.fixture
def paper_mapping():
    """The figure-1(b) mapping."""
    return figure1_mapping()


@pytest.fixture
def paper_tree_fp(paper_document, paper_mapping, fp_ring):
    """The figure-2(a) polynomial tree."""
    return encode_document(paper_document, paper_mapping, fp_ring)


@pytest.fixture
def paper_tree_int(paper_document, paper_mapping, int_ring):
    """The figure-2(b) polynomial tree."""
    return encode_document(paper_document, paper_mapping, int_ring)


@pytest.fixture
def catalog_document():
    """A moderately sized realistic document."""
    return generate_catalog_document(CatalogConfig(customers=6, products=5, seed=11))


@pytest.fixture
def small_random_document():
    """A small random document with a modest tag vocabulary."""
    return generate_random_document(
        RandomXmlConfig(element_count=30, tag_vocabulary_size=5, seed=5))


@pytest.fixture
def outsourced_catalog(catalog_document):
    """(client, server_tree, tree) for the catalog document in an F_p ring."""
    return outsource_document(catalog_document, seed=b"test-seed")


@pytest.fixture
def prg():
    """A deterministic PRG with a fixed seed."""
    return DeterministicPRG(b"unit-test-seed")


@pytest.fixture
def share_backend(tmp_path):
    """Route server share trees through the ``REPRO_STORE_BACKEND`` backend.

    Yields a ``wrap(tree)`` callable.  With the default (``memory``)
    backend it returns the tree unchanged; with ``REPRO_STORE_BACKEND=
    sqlite`` — the CI matrix leg — it copies the tree into a durable
    :class:`~repro.net.store.SQLiteShareStore`, so the store-agnostic
    update and query tests exercise the durable backend on every push
    instead of only where a test opts in.
    """
    from repro.net import SQLiteShareStore

    backend = os.environ.get("REPRO_STORE_BACKEND", "memory")
    if backend not in ("memory", "sqlite"):
        raise RuntimeError(f"unknown REPRO_STORE_BACKEND {backend!r}")
    opened = []

    def wrap(tree):
        if backend != "sqlite":
            return tree
        path = str(tmp_path / f"backend-{len(opened)}.db")
        store = SQLiteShareStore.from_tree(path, tree)
        opened.append(store)
        return store

    yield wrap
    for store in opened:
        store.close()
