"""Tests for the multi-document server engine, the hello negotiation and
the batched v2 frontier protocol, including concurrent query handling."""

import threading

import pytest

from repro.core import VerificationMode, outsource_document
from repro.errors import ProtocolError
from repro.net import (
    DEFAULT_DOCUMENT,
    DocumentRegistry,
    SQLiteShareStore,
    SearchServer,
    connect,
    connect_in_process,
)
from repro.net.messages import (
    EvaluateRequest,
    FrontierRequest,
    HelloRequest,
    HelloResponse,
    StructureRequest,
    decode_message,
)
from repro.workloads import CatalogConfig, generate_catalog_document


@pytest.fixture
def two_document_server(catalog_document):
    """A server hosting two catalogs plus the matching client contexts."""
    other_document = generate_catalog_document(
        CatalogConfig(customers=4, products=3, seed=23))
    server = SearchServer()
    clients = {}
    for document_id, document in (("north", catalog_document),
                                  ("south", other_document)):
        client, tree, _ = outsource_document(
            document, seed=b"tenant-" + document_id.encode())
        server.add_document(document_id, tree)
        clients[document_id] = client
    return server, clients


class TestHelloNegotiation:
    def test_highest_common_version_wins(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        response = server.handle(HelloRequest([1, 2, 99]))
        assert isinstance(response, HelloResponse)
        assert response.version == 2
        assert response.documents == [DEFAULT_DOCUMENT]
        assert response.root_id == server_tree.root_id
        assert response.node_count == server_tree.node_count()

    def test_unknown_versions_rejected_loudly(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        with pytest.raises(ProtocolError, match="no common version"):
            server.handle(HelloRequest([99, 100]))

    def test_adapter_negotiates(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        adapter, _, _ = connect_in_process(server_tree)
        assert adapter.protocol_version == 3
        assert adapter.batched_rounds

    def test_forced_v1_session_is_hello_free(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        adapter, _, channel = connect_in_process(server_tree, protocol_version=1)
        assert adapter.protocol_version == 1
        assert not adapter.batched_rounds
        assert channel.transcript == []

    def test_hello_does_not_leak_other_tenants(self, two_document_server):
        server, _ = two_document_server
        response = server.handle(HelloRequest([1, 2]).for_document("north"))
        assert response.documents == ["north"]
        # Unknown documents are rejected without enumerating hosted tenants.
        with pytest.raises(ProtocolError) as excinfo:
            server.handle(HelloRequest([1, 2]).for_document("nowhere"))
        assert "north" not in str(excinfo.value)
        assert "south" not in str(excinfo.value)

    def test_hello_survives_wire_roundtrip(self):
        message = decode_message(HelloRequest([1, 2]).encode())
        assert message.versions == [1, 2]
        response = decode_message(
            HelloResponse(2, ["a", "b"], root_id=0, node_count=7).encode())
        assert (response.version, response.documents) == (2, ["a", "b"])
        assert (response.root_id, response.node_count) == (0, 7)


class TestDocumentRegistry:
    def test_add_get_remove(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        registry = DocumentRegistry()
        registry.add("docs", server_tree)
        assert "docs" in registry and len(registry) == 1
        assert registry.get("docs").store.node_count() == server_tree.node_count()
        assert registry.total_storage_bits() == server_tree.storage_bits()
        with pytest.raises(ProtocolError):
            registry.add("docs", server_tree)
        registry.remove("docs")
        assert "docs" not in registry
        with pytest.raises(ProtocolError):
            registry.get("docs")
        with pytest.raises(ProtocolError):
            registry.remove("docs")

    def test_resolve_defaulting(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        registry = DocumentRegistry()
        # A single hosted document answers unaddressed requests.
        registry.add("only", server_tree)
        assert registry.resolve(None).document_id == "only"
        # With several documents, unaddressed requests are ambiguous...
        registry.add("second", server_tree)
        with pytest.raises(ProtocolError, match="address one explicitly"):
            registry.resolve(None)
        # ...unless one of them is literally the default document.
        registry.add(DEFAULT_DOCUMENT, server_tree)
        assert registry.resolve(None).document_id == DEFAULT_DOCUMENT


class TestMultiDocumentServer:
    def test_sessions_are_isolated_per_document(self, two_document_server):
        server, clients = two_document_server
        expected = {}
        for document_id, client in clients.items():
            tree = server.document(document_id).store
            expected[document_id] = client.lookup(tree, "customer").matches
        for document_id, client in clients.items():
            adapter, _ = connect(server, document_id=document_id)
            assert client.lookup(adapter, "customer").matches == \
                expected[document_id]

    def test_unknown_document_rejected(self, two_document_server):
        server, _ = two_document_server
        with pytest.raises(ProtocolError, match="unknown document"):
            connect(server, document_id="nowhere")
        request = EvaluateRequest([0], 3).for_document("nowhere")
        with pytest.raises(ProtocolError, match="unknown document"):
            server.handle(request)

    def test_unaddressed_request_on_multi_tenant_server(self, two_document_server):
        server, _ = two_document_server
        with pytest.raises(ProtocolError, match="address one explicitly"):
            server.handle(StructureRequest())

    def test_per_document_observations(self, two_document_server):
        server, clients = two_document_server
        adapter, _ = connect(server, document_id="north")
        clients["north"].lookup(adapter, "customer",
                                verification=VerificationMode.NONE)
        north = server.document("north").observations.as_dict()
        south = server.document("south").observations.as_dict()
        assert north["evaluation_requests"] > 0
        assert south["evaluation_requests"] == 0
        aggregate = server.observations.as_dict()
        assert aggregate["evaluation_requests"] == north["evaluation_requests"]

    def test_storage_bits_aggregates_documents(self, two_document_server):
        server, _ = two_document_server
        total = sum(server.document(document_id).store.storage_bits()
                    for document_id in server.registry.document_ids())
        assert server.storage_bits() == total

    def test_mixed_backends_identical(self, two_document_server, tmp_path,
                                      catalog_document):
        server, clients = two_document_server
        north_tree = server.document("north").store
        store = SQLiteShareStore.from_tree(str(tmp_path / "north.db"),
                                           north_tree.tree)
        server.add_document("north-disk", store)
        mem_adapter, _ = connect(server, document_id="north")
        disk_adapter, _ = connect(server, document_id="north-disk")
        client = clients["north"]
        for tag in ("customer", "product", "location"):
            assert client.lookup(mem_adapter, tag).matches == \
                client.lookup(disk_adapter, tag).matches
        store.close()


class TestBatchedProtocol:
    def test_v2_lookup_matches_v1(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        for tag in ("customer", "product", "location", "warehouse"):
            v1, _ = connect(server, protocol_version=1)
            v2, _ = connect(server, protocol_version=2)
            for mode in VerificationMode:
                assert client.lookup(v1, tag, verification=mode).matches == \
                    client.lookup(v2, tag, verification=mode).matches

    def test_v2_xpath_matches_v1_with_fewer_round_trips(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        totals = {}
        for version in (1, 2):
            adapter, channel = connect(server, protocol_version=version)
            result = client.xpath(adapter, "//customer/order")
            totals[version] = (result.matches, channel.stats.round_trips)
        assert totals[1][0] == totals[2][0]
        assert totals[2][1] < totals[1][1]

    def test_frontier_request_round_trip(self):
        message = FrontierRequest([1, 2], [3], prune=[9], include_children=True,
                                  fetch_polynomials=[4], fetch_constants=[5],
                                  lookahead=2).for_document("docs")
        decoded = decode_message(message.encode())
        assert decoded.node_ids == [1, 2]
        assert decoded.points == [3]
        assert decoded.prune == [9]
        assert decoded.include_children is True
        assert decoded.fetch_polynomials == [4]
        assert decoded.fetch_constants == [5]
        assert decoded.lookahead == 2
        assert decoded.document_id == "docs"

    def test_frontier_carries_prunes(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        root = server_tree.root_id
        children = server_tree.child_ids(root)
        server.handle(FrontierRequest([root], [3], prune=children))
        assert server.observations.pruned_nodes == children

    def test_lookahead_expands_evaluations(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        root = server_tree.root_id
        flat = server.handle(FrontierRequest([root], [3]))
        deep = server.handle(FrontierRequest([root], [3], lookahead=1))
        assert set(flat.evaluations[3]) == {root}
        assert set(deep.evaluations[3]) == {root} | set(server_tree.child_ids(root))
        # Speculated nodes come with their child lists for frontier building.
        assert set(deep.children) == set(deep.evaluations[3])

    def test_verification_closure_fetch(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        root = server_tree.root_id
        response = server.handle(FrontierRequest(include_children=True,
                                                 fetch_polynomials=[root]))
        assert set(response.polynomials) == {root} | set(server_tree.child_ids(root))
        response = server.handle(FrontierRequest(include_children=False,
                                                 fetch_polynomials=[root]))
        assert set(response.polynomials) == {root}


class TestConcurrentQueries:
    TAGS = ("customer", "product", "location", "order")

    def _serial_answers(self, client, server, document_id=None):
        answers = []
        for tag in self.TAGS:
            adapter, _ = connect(server, document_id=document_id)
            answers.append(tuple(client.lookup(adapter, tag).matches))
        return answers

    def test_threads_match_serial_single_document(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        expected = self._serial_answers(client, server)

        results = {}
        sessions = {}

        def worker(index):
            adapter, channel = connect(server)
            sessions[index] = channel
            results[index] = [tuple(client.lookup(adapter, tag).matches)
                              for tag in self.TAGS]

        requests_before = server.observations.requests_handled
        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert all(outcome == expected for outcome in results.values())
        # Per-session channel accounting adds up to the server's ledger.
        session_requests = sum(channel.stats.requests
                               for channel in sessions.values())
        assert session_requests == \
            server.observations.requests_handled - requests_before
        assert all(channel.stats.round_trips > 0
                   for channel in sessions.values())

    def test_threads_match_serial_two_documents(self, two_document_server):
        server, clients = two_document_server
        expected = {document_id: self._serial_answers(client, server, document_id)
                    for document_id, client in clients.items()}

        results = {}

        def worker(index, document_id):
            adapter, _ = connect(server, document_id=document_id)
            results[index] = (document_id,
                              [tuple(clients[document_id].lookup(adapter,
                                                                 tag).matches)
                               for tag in self.TAGS])

        threads = [threading.Thread(target=worker,
                                    args=(index, ("north", "south")[index % 2]))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for document_id, answers in results.values():
            assert answers == expected[document_id]

    def test_threads_on_sqlite_backend(self, outsourced_catalog, tmp_path):
        client, server_tree, _ = outsourced_catalog
        store = SQLiteShareStore.from_tree(str(tmp_path / "conc.db"), server_tree)
        server = SearchServer(store)
        expected = self._serial_answers(client, server)

        results = {}

        def worker(index):
            adapter, _ = connect(server)
            results[index] = [tuple(client.lookup(adapter, tag).matches)
                              for tag in self.TAGS]

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(outcome == expected for outcome in results.values())
        store.close()


class TestDocumentTransactions:
    def test_transaction_holds_the_document_lock(self, outsourced_catalog):
        _, server_tree, _ = outsourced_catalog
        server = SearchServer(server_tree)
        document = server.document()
        answered = threading.Event()

        def query():
            server.handle(StructureRequest())
            answered.set()

        with document.transaction() as txn:
            assert txn is not None
            worker = threading.Thread(target=query)
            worker.start()
            # The handler needs the document lock, which the open
            # transaction holds: it must not answer yet.
            assert not answered.wait(0.2)
        worker.join(timeout=5)
        assert answered.is_set()

    def test_updates_under_document_lock_stay_consistent(self,
                                                         outsourced_catalog):
        """Lookups racing WAL batches see pre- or post-update, nothing else."""
        from repro.core import UpdatableTree, choose_fp_ring
        from repro.xmltree import XmlElement

        document_src = generate_catalog_document(
            CatalogConfig(customers=3, products=2, seed=9))
        ring = choose_fp_ring(len(document_src.distinct_tags()) + 4)
        client, tree, _ = outsource_document(document_src, ring=ring,
                                             seed=b"locked-updates")
        server = SearchServer(tree)
        document = server.document()
        editor = UpdatableTree(client.ring, client.mapping,
                               client.share_generator, document.store,
                               lock=document.lock)
        client.mapping.extend(["annex", "shelf"])
        stop = threading.Event()
        errors = []

        adapter, _ = connect(server)

        def reader():
            try:
                while not stop.is_set():
                    # Through the engine: every request round takes the
                    # document lock the editor holds across each batch.
                    matches = client.lookup(adapter, "annex",
                                            verification=VerificationMode.NONE,
                                            ).matches
                    # Subtrees are inserted then deleted whole: any count
                    # in between would be a torn intermediate state.
                    if len(matches) not in (0, 1):
                        errors.append(f"torn annex count {len(matches)}")
            except Exception as exc:  # noqa: BLE001 - surfaced to the test
                errors.append(repr(exc))

        worker = threading.Thread(target=reader)
        worker.start()
        try:
            for _ in range(5):
                subtree = XmlElement("annex")
                subtree.add("shelf")
                report = editor.insert_subtree(tree.root_id, subtree)
                editor.delete_subtree(report.new_node_ids[0])
        finally:
            stop.set()
            worker.join(timeout=10)
        assert not errors
