"""Chaos tests: seeded faults at every protocol phase, bit-identical results.

Extends the crash-injection discipline of ``test_crash_safety`` upward
into the serving stack: a :class:`~repro.net.retry.ResilientServerInterface`
runs the figure-1 lookup workload while a seeded
:class:`~repro.net.faults.FaultPlan` resets connections, truncates
response frames, fails store operations and sheds requests — at the
hello, structure, frontier, verification and prune phases, over the
in-process channel, the threaded socket server and the asyncio server —
and every run must produce results bit-identical to the fault-free run.

The idempotency tests additionally pin the *server-side* invariant: a
request replayed after an ambiguous failure (processed, reply lost) is
answered from the idempotency cache, so the observation ledgers count it
exactly once.

The update-path tests extend the same discipline to v3 write batches: a
faulted ``UpdateRequest`` (connection reset before or after the send, a
truncated response, a busy frame, a transient store failure inside
``apply_batch``) must apply **exactly once** — never twice (the replay
is answered from the idempotency cache, proven by the commit audit
trail) and never half (a failed batch leaves the store bit-identical to
its pre-batch state).

Every plan and retry schedule is seeded; ``REPRO_CHAOS_SEED`` (used by
the CI chaos matrix) shifts the seeds without losing reproducibility.
"""

import os
import socket
import threading

import pytest

from repro.core import (
    UpdatableTree,
    VerificationMode,
    choose_fp_ring,
    outsource_document,
)
from repro.core.advanced import AdvancedQueryExecutor
from repro.errors import (
    ProtocolError,
    RetryExhaustedError,
    ServerBusyError,
    TransientServerError,
    TransportError,
)
from repro.net import (
    FaultPlan,
    FaultRule,
    FaultyChannel,
    FaultyStore,
    InMemoryShareStore,
    InstrumentedChannel,
    RemoteServerAdapter,
    RemoteUpdatableTree,
    SearchServer,
    SocketChannel,
    ThreadedSearchServer,
    connect,
    connect_resilient,
    connect_resilient_socket,
    connect_socket,
    flaky_handler,
    share_tree_from_dict,
    share_tree_to_dict,
    start_async_server,
)
from repro.net.messages import FrontierRequest
from repro.net.retry import RetryPolicy
from repro.workloads import CatalogConfig, figure1_document, generate_catalog_document
from repro.xmltree import parse_element

#: CI runs the suite under three fixed seeds; locally it defaults to 0.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

QUERIES = ["//client", "//name", "//client/name", "/customers/client/name"]


@pytest.fixture(scope="module")
def outsourced():
    document = figure1_document(clients=6)
    client, tree, _ = outsource_document(document, seed=b"chaos-tests")
    return client, tree


@pytest.fixture(scope="module")
def reference(outsourced):
    """Fault-free lookup results (the bit-identity yardstick)."""
    client, tree = outsourced
    adapter, _ = connect(SearchServer(tree))
    return run_queries(client, adapter)


def run_queries(client, adapter):
    return [AdvancedQueryExecutor(client.engine(adapter)).execute(query).matches
            for query in QUERIES]


def run_verified_lookup(client, adapter):
    """One lookup under FULL verification (exercises the fetch phase)."""
    engine = client.engine(adapter, verification=VerificationMode.FULL)
    return AdvancedQueryExecutor(engine).execute("//client/name").matches


def fast_policy(**overrides):
    """A retry policy that never really sleeps (chaos runs stay quick)."""
    settings = dict(max_attempts=8, deadline_s=None, base_backoff_s=0.0,
                    max_backoff_s=0.0, jitter=0.0, seed=CHAOS_SEED,
                    sleep=lambda _s: None)
    settings.update(overrides)
    return RetryPolicy(**settings)


class TestFaultPlanDeterminism:
    def test_same_seed_same_fires(self):
        points = (["frontier:send"] * 20 + ["frontier:recv"] * 20) * 3
        runs = []
        for _ in range(2):
            plan = FaultPlan.at_rate(0.3, kinds=["reset-after-send"],
                                     seed=CHAOS_SEED + 17)
            for point in points:
                plan.decide(point)
            runs.append(list(plan.fires))
        assert runs[0] == runs[1]
        assert runs[0]  # 30% over 120 consultations must fire sometimes

    def test_reset_replays_exactly(self):
        plan = FaultPlan.at_rate(0.5, kinds=["truncate-response"],
                                 seed=CHAOS_SEED)
        for _ in range(50):
            plan.decide("frontier:recv")
        first = list(plan.fires)
        plan.reset()
        for _ in range(50):
            plan.decide("frontier:recv")
        assert plan.fires == first

    def test_explicit_calls_fire_once(self):
        plan = FaultPlan.single("frontier:recv", "reset-after-send", call=3)
        fired = [plan.decide("frontier:recv") for _ in range(6)]
        assert [rule is not None for rule in fired] == \
            [False, False, True, False, False, False]

    def test_pattern_points_and_kind_validation(self):
        plan = FaultPlan([FaultRule("*:send", "reset-before-send",
                                    calls=[1])])
        assert plan.decide("hello:send") is not None
        assert plan.decide("frontier:recv") is None
        with pytest.raises(ValueError):
            FaultRule("x", "no-such-kind")
        with pytest.raises(ValueError):
            FaultRule("x", "delay", rate=1.5)


#: One scheduled fault per protocol phase; each must be survived with
#: bit-identical results.  ``call`` targets a mid-descent exchange where
#: there is one (the frontier phase), the first call elsewhere.
PHASE_FAULTS = [
    ("hello:send", "reset-before-send", 1),
    ("hello:recv", "reset-after-send", 1),
    ("structure:recv", "reset-after-send", 1),
    ("frontier:send", "reset-before-send", 2),
    ("frontier:send", "busy", 3),
    ("frontier:recv", "reset-after-send", 1),
    ("frontier:recv", "reset-after-send", 4),
    ("frontier:recv", "truncate-response", 2),
]


class TestResilientInProcess:
    """Resilient client over the in-process channel, one fault per phase."""

    @pytest.mark.parametrize("point,kind,call", PHASE_FAULTS)
    def test_phase_fault_bit_identical(self, outsourced, reference,
                                       point, kind, call):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan.single(point, kind, call=call, seed=CHAOS_SEED)
        # v2 sessions learn the structure from the hello reply, so the
        # structure exchange only exists on a v1 session.
        version = 1 if point.startswith("structure") else None
        adapter, channel = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, protocol_version=version, policy=fast_policy())
        assert run_queries(client, adapter) == reference
        assert plan.fires, "the scheduled fault never fired"
        assert channel.retries >= 1

    def test_every_phase_faulted_in_one_session(self, outsourced, reference):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan([FaultRule(point, kind, calls=[call])
                          for point, kind, call in PHASE_FAULTS],
                         seed=CHAOS_SEED)
        adapter, channel = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, policy=fast_policy())
        assert run_queries(client, adapter) == reference
        assert len(plan.fires) >= len(PHASE_FAULTS) - 1
        assert channel.reconnects >= 1

    def test_random_fault_rate_bit_identical(self, outsourced, reference):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan.at_rate(
            0.1, kinds=["reset-after-send", "reset-before-send"],
            seed=CHAOS_SEED + 1)
        adapter, _ = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, policy=fast_policy(max_attempts=20))
        for _ in range(3):
            assert run_queries(client, adapter) == reference

    def test_verified_lookup_survives_fetch_faults(self, outsourced):
        client, tree = outsourced
        fault_free, _ = connect(SearchServer(tree))
        expected = run_verified_lookup(client, fault_free)
        server = SearchServer(tree)
        plan = FaultPlan([
            FaultRule("frontier:recv", "reset-after-send", calls=[2, 5]),
            FaultRule("prune:recv", "reset-after-send", calls=[1]),
        ], seed=CHAOS_SEED)
        adapter, _ = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, policy=fast_policy())
        assert run_verified_lookup(client, adapter) == expected

    def test_plain_client_dies_where_resilient_survives(self, outsourced):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan.single("frontier:recv", "reset-after-send", call=1)
        channel = FaultyChannel(InstrumentedChannel(server.handle), plan)
        adapter = RemoteServerAdapter(channel, tree.ring)
        with pytest.raises(TransportError):
            run_queries(client, adapter)

    def test_retry_exhaustion_is_loud(self, outsourced):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan([FaultRule("frontier:recv", "reset-after-send",
                                    rate=1.0)], seed=CHAOS_SEED)
        adapter, _ = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, policy=fast_policy(max_attempts=3))
        with pytest.raises(RetryExhaustedError):
            run_queries(client, adapter)


class TestIdempotency:
    """Ambiguous failures must not double-count server-side."""

    def test_replay_not_double_observed(self, outsourced, reference):
        client, tree = outsourced
        fault_free_server = SearchServer(tree)
        clean_adapter, _ = connect_resilient(
            lambda: InstrumentedChannel(fault_free_server.handle),
            tree.ring, policy=fast_policy(), request_id_prefix="clean")
        assert run_queries(client, clean_adapter) == reference

        faulty_server = SearchServer(tree)
        plan = FaultPlan([FaultRule("frontier:recv", "reset-after-send",
                                    calls=[1, 3, 6])], seed=CHAOS_SEED)
        adapter, channel = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(faulty_server.handle),
                                  plan),
            tree.ring, policy=fast_policy(), request_id_prefix="faulty")
        assert run_queries(client, adapter) == reference
        assert len(plan.fires) == 3
        # Every replayed frontier round was answered from the idempotency
        # cache: both ledgers saw the identical workload exactly once.
        # The only aggregate difference is the replayed HELLOs (one per
        # reconnect) — real requests, honestly counted, no document state.
        faulty_view = faulty_server.observations.as_dict()
        clean_view = fault_free_server.observations.as_dict()
        reconnects = channel.reconnects
        assert reconnects == 3
        assert faulty_view.pop("requests_handled") == \
            clean_view.pop("requests_handled") + reconnects
        assert faulty_view == clean_view
        # The per-document ledger never sees a HELLO, so it is *exactly*
        # equal: replays were answered without touching the document.
        assert faulty_server.document().observations.as_dict() == \
            fault_free_server.document().observations.as_dict()

    def test_engine_replay_bit_identical(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        request = FrontierRequest([tree.root_id], [3], lookahead=1)
        request.with_request_id("replay-me")
        first = server.handle(request).encode()
        before = server.observations.as_dict()
        again = server.handle(request).encode()
        assert again == first
        assert server.observations.as_dict() == before

    def test_engine_replay_through_batch(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        request = FrontierRequest([tree.root_id], [3])
        request.with_request_id("batched-replay")
        first = server.frontier_batch([request])[0].encode()
        before = server.observations.as_dict()
        again = server.frontier_batch([request])[0].encode()
        assert again == first
        assert server.observations.as_dict() == before

    def test_distinct_ids_processed_separately(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        first = FrontierRequest([tree.root_id], [3]).with_request_id("id-1")
        second = FrontierRequest([tree.root_id], [3]).with_request_id("id-2")
        server.handle(first)
        count = server.observations.as_dict()["requests_handled"]
        server.handle(second)
        assert server.observations.as_dict()["requests_handled"] == count + 1


class TestStoreFaults:
    """Transient store failures become retryable in-band errors."""

    def test_in_process_store_fault(self, outsourced, reference):
        client, tree = outsourced
        plan = FaultPlan([FaultRule("store:evaluate_many", "store-error",
                                    calls=[1, 3])], seed=CHAOS_SEED)
        server = SearchServer(FaultyStore(InMemoryShareStore(tree), plan))
        adapter, _ = connect_resilient(
            lambda: InstrumentedChannel(server.handle),
            tree.ring, policy=fast_policy())
        assert run_queries(client, adapter) == reference
        assert len(plan.fires) == 2

    def test_threaded_store_fault(self, outsourced, reference):
        client, tree = outsourced
        plan = FaultPlan([FaultRule("store:evaluate_many", "store-error",
                                    calls=[2])], seed=CHAOS_SEED)
        server = ThreadedSearchServer(
            SearchServer(FaultyStore(InMemoryShareStore(tree), plan)))
        server.start()
        try:
            host, port = server.address
            adapter, channel = connect_resilient_socket(
                host, port, tree.ring, policy=fast_policy())
            try:
                assert run_queries(client, adapter) == reference
            finally:
                channel.close()
        finally:
            server.stop()
        assert plan.fires


class TestBusyAndAdmission:
    """Graceful degradation: busy replies, admission hooks, bounded queue."""

    def test_flaky_handler_busy_survived(self, outsourced, reference):
        client, tree = outsourced
        server = SearchServer(tree)
        plan = FaultPlan([FaultRule("serve:frontier", "busy", calls=[1, 2],
                                    retry_after_s=0.01)], seed=CHAOS_SEED)
        adapter, channel = connect_resilient(
            lambda: InstrumentedChannel(flaky_handler(server.handle, plan)),
            tree.ring, policy=fast_policy())
        assert run_queries(client, adapter) == reference
        assert channel.busy_waits == 2
        assert channel.reconnects == 0  # busy never drops the session

    def test_admission_hook_sheds_then_admits(self, outsourced, reference):
        client, tree = outsourced
        server = SearchServer(tree)
        shed = {"remaining": 2, "seen": 0}

        def hook(document, message):
            shed["seen"] += 1
            if shed["remaining"] > 0:
                shed["remaining"] -= 1
                return 0.01
            return None

        server.registry.set_admission_hook(hook, document_id="default")
        adapter, channel = connect_resilient(
            lambda: InstrumentedChannel(server.handle),
            tree.ring, policy=fast_policy())
        assert run_queries(client, adapter) == reference
        assert shed["seen"] >= 3
        assert channel.busy_waits == 2

    def test_admission_hook_raises_for_plain_client(self, outsourced):
        _, tree = outsourced
        server = SearchServer(tree)
        server.registry.set_admission_hook(lambda d, m: 0.5)
        adapter, _ = connect(server)
        with pytest.raises(ServerBusyError) as excinfo:
            adapter.frontier_round([tree.root_id], [3])
        assert excinfo.value.retry_after_s == 0.5
        server.registry.set_admission_hook(None)
        assert adapter.frontier_round([tree.root_id], [3]).round_trips == 1

    def test_async_bounded_queue_sheds_in_band(self, outsourced, reference):
        client, tree = outsourced
        handle = start_async_server(SearchServer(tree), queue_limit=1,
                                    busy_retry_after_s=0.0)
        try:
            # Saturate the one-slot coalescer queue from several resilient
            # sessions at once; shed requests come back as busy frames and
            # every session still completes bit-identically.
            results = {}
            errors = []

            def worker(index):
                try:
                    adapter, channel = connect_resilient_socket(
                        "127.0.0.1", handle.port, tree.ring,
                        policy=fast_policy(max_attempts=50))
                    try:
                        results[index] = run_queries(client, adapter)
                    finally:
                        channel.close()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(index,))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors
            assert all(results[index] == reference for index in range(4))
        finally:
            handle.stop()


class TestResilientSockets:
    """The same fault schedules against both real socket servers."""

    SOCKET_FAULTS = [
        ("hello:send", "reset-before-send", 1),
        ("frontier:recv", "reset-after-send", 1),
        ("frontier:recv", "truncate-response", 3),
        ("frontier:send", "busy", 2),
    ]

    @pytest.mark.parametrize("point,kind,call", SOCKET_FAULTS)
    def test_threaded_server(self, outsourced, reference, point, kind, call):
        client, tree = outsourced
        server = ThreadedSearchServer(SearchServer(tree))
        server.start()
        try:
            host, port = server.address
            plan = FaultPlan.single(point, kind, call=call, seed=CHAOS_SEED)
            adapter, channel = connect_resilient(
                lambda: FaultyChannel(SocketChannel(host, port), plan),
                tree.ring, policy=fast_policy())
            try:
                assert run_queries(client, adapter) == reference
            finally:
                channel.close()
            assert plan.fires
        finally:
            server.stop()

    @pytest.mark.parametrize("point,kind,call", SOCKET_FAULTS)
    def test_async_server(self, outsourced, reference, point, kind, call):
        client, tree = outsourced
        handle = start_async_server(SearchServer(tree))
        try:
            plan = FaultPlan.single(point, kind, call=call, seed=CHAOS_SEED)
            adapter, channel = connect_resilient(
                lambda: FaultyChannel(
                    SocketChannel("127.0.0.1", handle.port), plan),
                tree.ring, policy=fast_policy())
            try:
                assert run_queries(client, adapter) == reference
            finally:
                channel.close()
            assert plan.fires
        finally:
            handle.stop()

    def test_real_connection_death_mid_descent(self, outsourced, reference):
        """Kill the actual TCP connection (not an injected exception)."""
        client, tree = outsourced
        handle = start_async_server(SearchServer(tree))
        try:
            channels = []

            def factory():
                channel = SocketChannel("127.0.0.1", handle.port)
                channels.append(channel)
                return channel

            adapter, resilient = connect_resilient(
                factory, tree.ring, policy=fast_policy())
            # Sever the live socket under the client's feet; the next
            # exchange fails at the transport and must transparently
            # reconnect, replay HELLO and resume the descent.
            assert adapter.frontier_round([tree.root_id], [3]).round_trips
            channels[-1]._sock.shutdown(socket.SHUT_RDWR)
            assert run_queries(client, adapter) == reference
            assert resilient.reconnects >= 1
            resilient.close()
        finally:
            handle.stop()


class TestSocketLeakRegression:
    """Satellite: failed session setup must not leak the socket."""

    def test_connect_socket_closes_on_failed_hello(self, outsourced):
        _, tree = outsourced
        # A raw TCP listener that accepts and answers garbage, so HELLO
        # negotiation fails after the connection is established.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        accepted = []

        def acceptor():
            conn, _ = listener.accept()
            accepted.append(conn)
            conn.recv(65536)
            conn.sendall(b"\x00\x00\x00\x04junk")

        thread = threading.Thread(target=acceptor, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        created = []
        original_init = SocketChannel.__init__

        def tracking_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            created.append(self)

        SocketChannel.__init__ = tracking_init
        try:
            with pytest.raises(ProtocolError):
                connect_socket(host, port, tree.ring, timeout_s=5.0)
        finally:
            SocketChannel.__init__ = original_init
            listener.close()
            for conn in accepted:
                conn.close()
        assert len(created) == 1
        # The failed connect must have closed its socket: fileno() of a
        # closed socket is -1.
        assert created[0]._sock.fileno() == -1

    def test_connection_refused_raises_transport_error(self, outsourced):
        _, tree = outsourced
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, dead_port = probe.getsockname()
        probe.close()
        with pytest.raises(TransportError):
            connect_socket("127.0.0.1", dead_port, tree.ring, timeout_s=2.0)


def _editable():
    """(client, hosted_tree, reference_clone) with F_p headroom for edits."""
    document = generate_catalog_document(
        CatalogConfig(customers=4, products=3, seed=13))
    ring = choose_fp_ring(len(document.distinct_tags()) + 4)
    client, tree, _ = outsource_document(document, ring=ring,
                                         seed=b"chaos-update")
    reference = share_tree_from_dict(share_tree_to_dict(tree))
    return client, tree, reference


def _store_fingerprint(store):
    """Bit-level store state: structure plus every share's coefficients."""
    return {
        node_id: (store.parent_id(node_id),
                  tuple(store.child_ids(node_id)),
                  tuple(store.share_of(node_id).coeffs))
        for node_id in store.node_ids()
    }


def _edit_targets(tree):
    children = tree.child_ids(tree.root_id)
    return {"insert": children[0], "rename": children[-1],
            "delete": children[1]}


def _run_edits(editor, targets):
    editor.insert_subtree(targets["insert"],
                          parse_element("<chaos><probe/></chaos>"))
    editor.rename_node(targets["rename"], "zchaos")
    editor.delete_subtree(targets["delete"])


#: One scheduled fault per update-path phase.  ``reset-after-send`` on
#: ``update:recv`` is the ambiguous case: the batch *was* committed and
#: the reply lost, so the replay must be answered from the idempotency
#: cache instead of applied twice.
UPDATE_FAULTS = [
    ("update:send", "reset-before-send", 1),
    ("update:send", "busy", 2),
    ("update:recv", "reset-after-send", 1),
    ("update:recv", "reset-after-send", 3),
    ("update:recv", "truncate-response", 2),
]


class TestUpdateFaults:
    """v3 write batches under faults: exactly once, never half."""

    @pytest.mark.parametrize("point,kind,call", UPDATE_FAULTS)
    def test_update_fault_applies_exactly_once(self, point, kind, call):
        client, tree, reference = _editable()
        targets = _edit_targets(tree)
        _run_edits(UpdatableTree(client.ring, client.mapping,
                                 client.share_generator, reference),
                   targets)

        server = SearchServer(tree)
        plan = FaultPlan.single(point, kind, call=call, seed=CHAOS_SEED)
        adapter, channel = connect_resilient(
            lambda: FaultyChannel(InstrumentedChannel(server.handle), plan),
            tree.ring, policy=fast_policy())
        editor = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator)
        _run_edits(editor, targets)

        assert plan.fires, "the scheduled update fault never fired"
        assert editor.rebases == 0
        # Bit-identical to the fault-free in-process run: nothing was
        # lost, nothing was applied twice.
        assert _store_fingerprint(server.document().store) == \
            _store_fingerprint(reference)
        # The commit audit trail shows three batches, each committed
        # exactly once under a distinct idempotency key — replays after
        # ambiguous failures were answered from the cache.
        log = server.document().update_log
        assert [entry[1] for entry in log] == ["insert", "rename", "delete"]
        ids = [entry[0] for entry in log]
        assert all(ids) and len(set(ids)) == len(ids)

    def test_update_faults_over_real_sockets(self):
        client, tree, reference = _editable()
        targets = _edit_targets(tree)
        _run_edits(UpdatableTree(client.ring, client.mapping,
                                 client.share_generator, reference),
                   targets)

        core = SearchServer(tree)
        server = ThreadedSearchServer(core)
        server.start()
        try:
            host, port = server.address
            plan = FaultPlan([
                FaultRule("update:send", "reset-before-send", calls=[1]),
                FaultRule("update:recv", "reset-after-send", calls=[2]),
            ], seed=CHAOS_SEED)
            adapter, channel = connect_resilient(
                lambda: FaultyChannel(SocketChannel(host, port), plan),
                tree.ring, policy=fast_policy())
            try:
                editor = RemoteUpdatableTree(adapter, client.mapping,
                                             client.share_generator)
                _run_edits(editor, targets)
            finally:
                channel.close()
            assert len(plan.fires) == 2
        finally:
            server.stop()
        assert _store_fingerprint(core.document().store) == \
            _store_fingerprint(reference)
        ids = [entry[0] for entry in core.document().update_log]
        assert len(ids) == 3 and all(ids) and len(set(ids)) == len(ids)

    def test_store_fault_retries_to_exactly_once(self):
        client, tree, reference = _editable()
        targets = _edit_targets(tree)
        _run_edits(UpdatableTree(client.ring, client.mapping,
                                 client.share_generator, reference),
                   targets)

        plan = FaultPlan([FaultRule("store:apply_batch", "store-error",
                                    calls=[1, 3])], seed=CHAOS_SEED)
        server = SearchServer(FaultyStore(InMemoryShareStore(tree), plan))
        adapter, _ = connect_resilient(
            lambda: InstrumentedChannel(server.handle),
            tree.ring, policy=fast_policy())
        editor = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator)
        _run_edits(editor, targets)

        assert len(plan.fires) == 2
        # The injected failures fired *before* the batch touched the
        # store, the retries landed it: exactly-once, bit-identical.
        assert _store_fingerprint(server.document().store) == \
            _store_fingerprint(reference)
        log = server.document().update_log
        assert [entry[1] for entry in log] == ["insert", "rename", "delete"]
        assert len({entry[0] for entry in log}) == 3

    def test_failed_batch_never_half_applies(self):
        client, tree, _ = _editable()
        targets = _edit_targets(tree)
        plan = FaultPlan([FaultRule("store:apply_batch", "store-error",
                                    calls=[1])], seed=CHAOS_SEED)
        server = SearchServer(FaultyStore(InMemoryShareStore(tree), plan))
        before = _store_fingerprint(server.document().store)

        adapter, _ = connect(server)
        editor = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator)
        with pytest.raises(TransientServerError):
            editor.rename_node(targets["rename"], "zhalf")
        # The failed batch left no trace: store bit-identical, no commit
        # logged, no version bumped.
        assert _store_fingerprint(server.document().store) == before
        assert server.document().update_log == []
        assert server.document().versions == {}

        # The same editor retries cleanly once the fault has passed.
        editor.rename_node(targets["rename"], "zhalf")
        assert [entry[1] for entry in server.document().update_log] == \
            ["rename"]


class TestGracefulShutdown:
    def test_threaded_stop_waits_for_inflight(self, outsourced):
        _, tree = outsourced
        server = ThreadedSearchServer(SearchServer(tree),
                                      drain_timeout_s=5.0)
        server.start()
        host, port = server.address
        adapter, channel = connect_socket(host, port, tree.ring)
        try:
            assert adapter.frontier_round([tree.root_id], [3]).round_trips
        finally:
            channel.close()
        server.stop()     # drains cleanly with nothing in flight

    def test_async_stop_drains(self, outsourced, reference):
        client, tree = outsourced
        handle = start_async_server(SearchServer(tree), drain_timeout_s=5.0)
        adapter, channel = connect_resilient_socket(
            "127.0.0.1", handle.port, tree.ring, policy=fast_policy())
        try:
            assert run_queries(client, adapter) == reference
        finally:
            channel.close()
        handle.stop()
        assert handle.server.shed_requests == 0


class TestControlPlaneAccounting:
    """Every admitted request is accounted exactly once, even under chaos."""

    @staticmethod
    def _reconciled(server):
        accounting = server.accounting()
        assert accounting["admitted"] == (accounting["completed"]
                                          + accounting["shed"]
                                          + accounting["failed"])
        assert accounting["inflight"] == 0
        return accounting

    def test_transport_killed_mid_coalesced_round(self, outsourced):
        """Stop the async transport under live sessions; the ledger balances.

        Several socket sessions hammer coalesced lookups while the
        transport is torn down beneath them.  Whatever each session saw
        (a completed answer, a connection reset, a half-written frame),
        the serving core must account every admitted request exactly
        once: admitted == completed + shed + failed with nothing left
        in flight.
        """
        import time as _time

        client, tree = outsourced
        server = SearchServer(tree)
        handle = start_async_server(server, drain_timeout_s=2.0)
        stop = threading.Event()

        def session(index):
            while not stop.is_set():
                try:
                    adapter, channel = connect_socket(
                        "127.0.0.1", handle.port, tree.ring, timeout_s=5.0)
                    try:
                        run_queries(client, adapter)
                    finally:
                        channel.close()
                except Exception:
                    return      # the transport died underneath us: expected

        threads = [threading.Thread(target=session, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        _time.sleep(0.3)        # let a few coalesced rounds get going
        handle.stop()
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        accounting = self._reconciled(server)
        assert accounting["admitted"] > 0
        assert accounting["completed"] > 0

    def test_quota_sheds_reconcile_and_recover(self, outsourced):
        """Deterministic quota exhaustion: sheds counted, bucket refills."""
        from repro.net.engine import DEFAULT_DOCUMENT, DocumentRegistry
        from repro.net.messages import StructureRequest
        from repro.obs import FairShareAdmission

        _, tree = outsourced
        clock = {"now": 0.0}
        admission = FairShareAdmission(clock=lambda: clock["now"])
        registry = DocumentRegistry(admission=admission)
        server = SearchServer(tree, registry=registry)
        registry.configure_quota(DEFAULT_DOCUMENT, 1.0, burst=3)

        for _ in range(3):      # the burst allowance
            server.handle(StructureRequest())
        shed = 0
        for _ in range(4):
            with pytest.raises(ServerBusyError) as excinfo:
                server.handle(StructureRequest())
            assert excinfo.value.retry_after_s > 0
            shed += 1
        clock["now"] += 2.0     # two tokens refill at rate 1/s
        for _ in range(2):
            server.handle(StructureRequest())

        accounting = self._reconciled(server)
        assert accounting["shed"] == shed
        assert accounting["completed"] == 5
        ledger = registry.quota_ledger()
        # No tenant ledger leaks: only the configured tenant appears, and
        # its ledger matches the registry's own counters.
        assert set(ledger) == {DEFAULT_DOCUMENT}
        assert ledger[DEFAULT_DOCUMENT]["admitted"] == 5
        assert ledger[DEFAULT_DOCUMENT]["shed"] == shed
        assert ledger[DEFAULT_DOCUMENT]["borrowed"] == 0.0

    def test_backpressure_sheds_carry_reason_label(self, outsourced, reference):
        """Transport-queue sheds reconcile with reason="backpressure"."""
        client, tree = outsourced
        server = SearchServer(tree)
        handle = start_async_server(server, queue_limit=1,
                                    busy_retry_after_s=0.0)
        try:
            errors = []

            def worker(index):
                try:
                    adapter, channel = connect_resilient_socket(
                        "127.0.0.1", handle.port, tree.ring,
                        policy=fast_policy(max_attempts=50))
                    try:
                        assert run_queries(client, adapter) == reference
                    finally:
                        channel.close()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(index,))
                       for index in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors
        finally:
            handle.stop()
        accounting = self._reconciled(server)
        shed_by_reason = server.metrics.counter_total(
            "server_requests_shed_total", reason="backpressure")
        assert accounting["shed"] == handle.server.shed_requests
        assert shed_by_reason == handle.server.shed_requests
