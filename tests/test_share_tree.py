"""Tests for splitting the polynomial tree into client and server shares (§4.2)."""

import pytest

from repro.core import (
    ClientShareGenerator,
    ServerShareTree,
    reconstruct_tree,
    share_tree,
)
from repro.errors import SharingError
from repro.prg import DeterministicPRG


class TestSplitting:
    def test_shares_sum_to_original(self, paper_tree_fp, prg):
        client, server = share_tree(paper_tree_fp, prg)
        ring = paper_tree_fp.ring
        for node in paper_tree_fp.iter_preorder():
            total = ring.add(client.share_for(node.node_id),
                             server.share_of(node.node_id))
            assert total == node.polynomial

    def test_shares_sum_to_original_int_ring(self, paper_tree_int, prg):
        client, server = share_tree(paper_tree_int, prg)
        ring = paper_tree_int.ring
        for node in paper_tree_int.iter_preorder():
            total = ring.add(client.share_for(node.node_id),
                             server.share_of(node.node_id))
            assert total == node.polynomial

    def test_client_shares_regenerable_from_seed_only(self, paper_tree_fp):
        _, server = share_tree(paper_tree_fp, DeterministicPRG(b"the-seed"))
        # A fresh generator built from the same seed produces the same shares.
        regenerated = ClientShareGenerator(paper_tree_fp.ring,
                                           DeterministicPRG(b"the-seed"))
        for node in paper_tree_fp.iter_preorder():
            total = paper_tree_fp.ring.add(regenerated.share_for(node.node_id),
                                           server.share_of(node.node_id))
            assert total == node.polynomial

    def test_different_seeds_give_different_server_trees(self, paper_tree_fp):
        _, server_a = share_tree(paper_tree_fp, DeterministicPRG(b"seed-a"))
        _, server_b = share_tree(paper_tree_fp, DeterministicPRG(b"seed-b"))
        different = any(server_a.share_of(i) != server_b.share_of(i)
                        for i in server_a.node_ids())
        assert different

    def test_client_share_deterministic_per_node(self, paper_tree_fp, prg):
        client, _ = share_tree(paper_tree_fp, prg)
        assert client.share_for(3) == client.share_for(3)
        assert client.shares_for([0, 1]) == {0: client.share_for(0),
                                             1: client.share_for(1)}

    def test_client_evaluate_matches_polynomial_evaluation(self, paper_tree_fp, prg):
        client, _ = share_tree(paper_tree_fp, prg)
        ring = paper_tree_fp.ring
        assert client.evaluate(0, 2) == ring.evaluate(client.share_for(0), 2)


class TestServerShareTree:
    def test_structure_queries(self, paper_tree_fp, prg):
        _, server = share_tree(paper_tree_fp, prg)
        assert server.root_id == 0
        assert server.node_count() == 5
        assert server.child_ids(0) == [1, 3]
        assert server.parent_id(2) == 1
        assert server.parent_id(0) is None
        assert server.depth_of(4) == 2
        assert len(server) == 5

    def test_unknown_nodes_rejected(self, paper_tree_fp, prg):
        _, server = share_tree(paper_tree_fp, prg)
        with pytest.raises(SharingError):
            server.share_of(99)
        with pytest.raises(SharingError):
            server.child_ids(99)
        with pytest.raises(SharingError):
            server.parent_id(99)

    def test_manual_construction_errors(self, fp_ring):
        tree = ServerShareTree(fp_ring)
        tree.add_node(0, None, fp_ring.one)
        with pytest.raises(SharingError):
            tree.add_node(0, None, fp_ring.one)
        with pytest.raises(SharingError):
            tree.add_node(5, 3, fp_ring.one)
        with pytest.raises(SharingError):
            tree.add_node(6, None, fp_ring.one)

    def test_storage_bits_positive(self, paper_tree_fp, prg):
        _, server = share_tree(paper_tree_fp, prg)
        assert server.storage_bits() > 0

    def test_evaluate_uses_ring_semantics(self, paper_tree_int, prg):
        _, server = share_tree(paper_tree_int, prg)
        value = server.evaluate(0, 2)
        assert 0 <= value < paper_tree_int.ring.evaluation_modulus(2)


class TestReconstruction:
    def test_roundtrip(self, paper_tree_fp, prg):
        client, server = share_tree(paper_tree_fp, prg)
        rebuilt = reconstruct_tree(client, server)
        for node in paper_tree_fp.iter_preorder():
            assert rebuilt.polynomial(node.node_id) == node.polynomial
            assert rebuilt.node(node.node_id).parent_id == node.parent_id

    def test_roundtrip_int_ring(self, paper_tree_int, prg):
        client, server = share_tree(paper_tree_int, prg)
        rebuilt = reconstruct_tree(client, server)
        for node in paper_tree_int.iter_preorder():
            assert rebuilt.polynomial(node.node_id) == node.polynomial
