"""Multi-writer conflict handling for the v3 update protocol.

Two remote writers edit the same hosted document.  Because every update
rewrites the ancestor shares up to the root, *any* two concurrent
batches overlap at shared ancestors — so the losing writer's batch is
rejected with a :class:`~repro.net.messages.ConflictResponse` and
:class:`~repro.net.client.RemoteUpdatableTree` transparently rebases:
merge the reported versions, re-mirror the document, recompute, resend.

The contract proven here:

* **Disjoint subtrees** — both writers commit (the loser silently
  rebases) and the final store is bit-identical to the same edits
  applied sequentially in-process: deterministic regardless of who wins
  the race, over the in-process channel and both socket servers.
* **Overlapping subtrees** — when the second writer's anchor node was
  removed by the first, the conflict surfaces as
  :class:`~repro.errors.UpdateConflictError` and nothing half-applies.
* Exactly one ``ConflictResponse`` crosses the wire for one stale
  batch, and a writer with no rebase budget fails loudly.
"""

import os
import threading

import pytest

from repro.core import UpdatableTree, choose_fp_ring, outsource_document
from repro.errors import UpdateConflictError
from repro.net import (
    ConflictResponse,
    InstrumentedChannel,
    RemoteServerAdapter,
    RemoteUpdatableTree,
    SearchServer,
    ThreadedSearchServer,
    connect,
    connect_socket,
    share_tree_from_dict,
    share_tree_to_dict,
    start_async_server,
)
from repro.workloads import CatalogConfig, generate_catalog_document

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def store_state(store):
    return {
        node_id: (store.parent_id(node_id),
                  tuple(store.child_ids(node_id)),
                  tuple(store.share_of(node_id).coeffs))
        for node_id in store.node_ids()
    }


def outsourced_pair():
    document = generate_catalog_document(
        CatalogConfig(customers=5, products=4, seed=47))
    ring = choose_fp_ring(len(document.distinct_tags()) + 6)
    client, tree, _ = outsource_document(document, ring=ring,
                                         seed=b"conflict-tests")
    reference = share_tree_from_dict(share_tree_to_dict(tree))
    return client, tree, reference


def remote_editor(client, adapter, **kwargs):
    return RemoteUpdatableTree(adapter, client.mapping,
                               client.share_generator, **kwargs)


def disjoint_rename_targets(tree):
    """Two sets of nodes in different root-child subtrees (plus new tags)."""
    first, second = tree.child_ids(tree.root_id)[:2]
    targets_one = [(first, "wone")] + \
        [(child, "wonea") for child in tree.child_ids(first)[:1]]
    targets_two = [(second, "wtwo")] + \
        [(child, "wtwoa") for child in tree.child_ids(second)[:1]]
    return targets_one, targets_two


def sequential_reference(client, reference, targets_one, targets_two):
    editor = UpdatableTree(client.ring, client.mapping,
                           client.share_generator, reference)
    for node_id, tag in targets_one + targets_two:
        editor.rename_node(node_id, tag)
    return store_state(reference)


class TestDisjointWriters:
    """Disjoint edits both commit; the race's outcome is deterministic."""

    def _race(self, client, make_adapter, targets_one, targets_two):
        """Run both rename sets from two threads through fresh sessions."""
        barrier = threading.Barrier(2)
        editors = {}
        errors = []

        def writer(name, targets):
            try:
                adapter, cleanup = make_adapter()
                try:
                    editor = remote_editor(client, adapter)
                    editors[name] = editor
                    barrier.wait(timeout=30.0)
                    for node_id, tag in targets:
                        editor.rename_node(node_id, tag)
                finally:
                    cleanup()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((name, exc))

        threads = [threading.Thread(target=writer, args=("w1", targets_one)),
                   threading.Thread(target=writer, args=("w2", targets_two))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, f"a disjoint writer failed: {errors}"
        return editors

    def test_in_process_race(self, share_backend):
        client, tree, reference = outsourced_pair()
        targets_one, targets_two = disjoint_rename_targets(tree)
        server = SearchServer(share_backend(tree))

        def make_adapter():
            adapter, _ = connect(server)
            return adapter, lambda: None

        self._race(client, make_adapter, targets_one, targets_two)
        expected = sequential_reference(client, reference,
                                        targets_one, targets_two)
        assert store_state(server.document().store) == expected
        # One committed batch per rename, regardless of how many
        # conflicted attempts were rejected along the way.
        assert len(server.document().update_log) == \
            len(targets_one) + len(targets_two)

    @pytest.mark.parametrize("transport", ["threaded", "async"])
    def test_socket_race(self, transport, share_backend):
        client, tree, reference = outsourced_pair()
        targets_one, targets_two = disjoint_rename_targets(tree)
        core = SearchServer(share_backend(tree))
        if transport == "threaded":
            server = ThreadedSearchServer(core)
            server.start()
            address = server.address
            stop = server.stop
        else:
            handle = start_async_server(core)
            address = ("127.0.0.1", handle.port)
            stop = handle.stop
        try:
            def make_adapter():
                adapter, channel = connect_socket(address[0], address[1],
                                                  tree.ring)
                return adapter, channel.close

            self._race(client, make_adapter, targets_one, targets_two)
        finally:
            stop()
        expected = sequential_reference(client, reference,
                                        targets_one, targets_two)
        assert store_state(core.document().store) == expected
        assert len(core.document().update_log) == \
            len(targets_one) + len(targets_two)


class TestOverlappingWriters:
    """Stale batches: one conflict frame, transparent or loud rebase."""

    def test_stale_writer_gets_exactly_one_conflict_response(self):
        client, tree, reference = outsourced_pair()
        targets_one, targets_two = disjoint_rename_targets(tree)
        server = SearchServer(tree)
        conflicts = []

        def counting_handler(message):
            response = server.handle(message)
            if isinstance(response, ConflictResponse):
                conflicts.append(response)
            return response

        first, _ = connect(server)
        writer_one = remote_editor(client, first)
        writer_two = RemoteUpdatableTree(
            RemoteServerAdapter(InstrumentedChannel(counting_handler),
                                tree.ring),
            client.mapping, client.share_generator)

        # Writer one commits first: every ancestor version (including the
        # root's) moves past what writer two mirrored.
        node_one, tag_one = targets_one[0]
        writer_one.rename_node(node_one, tag_one)
        # Writer two edits a *disjoint* subtree, but its base versions are
        # stale at the shared root — exactly one conflict round trip, then
        # the rebased batch commits.
        node_two, tag_two = targets_two[0]
        writer_two.rename_node(node_two, tag_two)
        assert len(conflicts) == 1
        assert writer_two.rebases == 1
        expected = sequential_reference(client, reference,
                                        [(node_one, tag_one)],
                                        [(node_two, tag_two)])
        assert store_state(server.document().store) == expected
        assert len(server.document().update_log) == 2

    def test_removed_anchor_surfaces_conflict(self):
        client, tree, reference = outsourced_pair()
        server = SearchServer(tree)
        victim = tree.child_ids(tree.root_id)[1]
        inside = tree.child_ids(victim)[0]

        first, _ = connect(server)
        second, _ = connect(server)
        writer_one = remote_editor(client, first)
        writer_two = remote_editor(client, second)
        writer_two.mirror.prefetch([inside])   # mirror is now stale-able

        writer_one.delete_subtree(victim)
        with pytest.raises(UpdateConflictError):
            writer_two.rename_node(inside, "zlost")

        # Only the delete committed; nothing from writer two half-applied.
        ref_editor = UpdatableTree(client.ring, client.mapping,
                                   client.share_generator, reference)
        ref_editor.delete_subtree(victim)
        assert store_state(server.document().store) == store_state(reference)
        assert [entry[1] for entry in server.document().update_log] == \
            ["delete"]

    def test_no_rebase_budget_fails_loudly(self):
        client, tree, _ = outsourced_pair()
        targets_one, targets_two = disjoint_rename_targets(tree)
        server = SearchServer(tree)
        first, _ = connect(server)
        second, _ = connect(server)
        writer_one = remote_editor(client, first)
        writer_two = remote_editor(client, second, max_rebases=0)

        node_one, tag_one = targets_one[0]
        writer_one.rename_node(node_one, tag_one)
        node_two, tag_two = targets_two[0]
        with pytest.raises(UpdateConflictError):
            writer_two.rename_node(node_two, tag_two)
        assert writer_two.rebases == 0
        assert len(server.document().update_log) == 1
