"""Tests for the XPath subset: parser, plaintext evaluator and query plans."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xmltree import parse_document
from repro.xpath import (
    Axis,
    LocationPath,
    Step,
    compile_plan,
    element_matches_path,
    evaluate_xpath,
    parse_xpath,
)

DOC = parse_document("""
<site>
  <regions>
    <europe><item><name/><description><text/></description></item></europe>
    <asia><item><name/></item></asia>
  </regions>
  <people>
    <person><name/></person>
    <person><name/><profile><interest/></profile></person>
  </people>
  <item><name/></item>
</site>
""")


class TestParser:
    def test_simple_descendant(self):
        path = parse_xpath("//item")
        assert path.length == 1
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[0].tag == "item"

    def test_mixed_axes(self):
        path = parse_xpath("//a/b//c/d")
        assert [s.axis for s in path.steps] == [
            Axis.DESCENDANT, Axis.CHILD, Axis.DESCENDANT, Axis.CHILD]
        assert [s.tag for s in path.steps] == ["a", "b", "c", "d"]

    def test_relative_path_treated_as_descendant(self):
        assert parse_xpath("a/b") == parse_xpath("//a/b")

    def test_wildcard(self):
        path = parse_xpath("//*/name")
        assert path.steps[0].is_wildcard()
        assert path.has_wildcards()

    def test_absolute_child_path(self):
        path = parse_xpath("/site/people")
        assert path.steps[0].axis is Axis.CHILD

    def test_round_trip_str(self):
        assert str(parse_xpath("//a/b//c")) == "//a/b//c"

    @pytest.mark.parametrize("bad", [
        "", "   ", "//", "//a/", "//a[1]", "//a/@id", "//a | //b", "//a b", 42,
    ])
    def test_rejects_unsupported(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_path_helpers(self):
        path = parse_xpath("//a/b//a")
        assert path.tags() == ["a", "b", "a"]
        assert path.distinct_tags() == ["a", "b"]
        assert parse_xpath("//client").is_single_descendant_lookup()
        assert not parse_xpath("//a/b").is_single_descendant_lookup()

    def test_step_and_path_validation(self):
        with pytest.raises(ValueError):
            Step(Axis.CHILD, "")
        with pytest.raises(TypeError):
            Step("child", "a")
        with pytest.raises(ValueError):
            LocationPath([])


class TestEvaluator:
    def _tags(self, results):
        return [element.tag_path() for element in results]

    def test_descendant_lookup(self):
        results = evaluate_xpath(DOC, "//item")
        assert len(results) == 3
        assert all(element.tag == "item" for element in results)

    def test_root_is_included_in_descendant_axis(self):
        assert len(evaluate_xpath(DOC, "//site")) == 1

    def test_child_steps(self):
        assert self._tags(evaluate_xpath(DOC, "//europe/item")) == [
            "site/regions/europe/item"]
        assert evaluate_xpath(DOC, "//europe/name") == []

    def test_descendant_steps(self):
        assert len(evaluate_xpath(DOC, "//regions//name")) == 2
        assert len(evaluate_xpath(DOC, "//person//interest")) == 1

    def test_absolute_path(self):
        assert self._tags(evaluate_xpath(DOC, "/site/people/person/name")) == [
            "site/people/person/name", "site/people/person/name"]
        assert evaluate_xpath(DOC, "/people") == []

    def test_wildcards(self):
        assert len(evaluate_xpath(DOC, "//person/*")) == 3
        assert len(evaluate_xpath(DOC, "//regions/*/item")) == 2

    def test_document_order_and_no_duplicates(self):
        results = evaluate_xpath(DOC, "//name")
        positions = [element.path() for element in results]
        assert positions == sorted(positions)
        assert len(set(map(id, results))) == len(results)

    def test_descendant_does_not_match_self_mid_path(self):
        # //item//item must not return an item for being its own descendant.
        assert evaluate_xpath(DOC, "//item//item") == []

    def test_element_matches_path(self):
        item = evaluate_xpath(DOC, "//europe/item")[0]
        assert element_matches_path(item, "//item")
        assert element_matches_path(item, "//europe/item")
        assert not element_matches_path(item, "//asia/item")

    def test_accepts_parsed_paths_and_elements(self):
        path = parse_xpath("//person")
        assert evaluate_xpath(DOC.root, path) == evaluate_xpath(DOC, "//person")


class TestQueryPlan:
    def test_remaining_tags_are_suffixes(self):
        plan = compile_plan("//a/b//c")
        assert [step.remaining_tags for step in plan.steps] == [
            ("a", "b", "c"), ("b", "c"), ("c",)]
        assert plan.all_tags == ("a", "b", "c")
        assert plan.length == 3

    def test_wildcards_excluded_from_containment(self):
        plan = compile_plan("//a/*/c")
        assert plan.steps[0].remaining_tags == ("a", "c")
        assert plan.steps[1].remaining_tags == ("c",)
        assert plan.steps[1].is_wildcard()
        assert plan.all_tags == ("a", "c")

    def test_simple_lookup_detection(self):
        assert compile_plan("//x").is_simple_lookup()
        assert not compile_plan("/x").is_simple_lookup()

    def test_accepts_precompiled_input(self):
        path = parse_xpath("//a/b")
        plan = compile_plan(path)
        assert plan.path is path
        assert plan.distinct_tag_count() == 2
