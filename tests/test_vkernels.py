"""Property tests: the vectorized tier is bit-identical to flat and generic.

Every prime-field operation is computed three times — vectorized
(``VecFpKernel``), flat (``use_vector_kernels(False)``) and generic
(``use_kernels(False)``) — and the results compared for exact equality,
across primes on both sides of the native-width boundary, degrees on both
sides of ``VECTOR_MIN_COEFFS``, and the empty/constant edge cases.  The
same triple comparison is run end-to-end: batched SQLite store evaluation
and full protocol lookups.  The :class:`AdaptiveLookahead` controller and
the numpy-absent fallback (``REPRO_DISABLE_NUMPY``) are covered here too.
"""

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    Polynomial,
    PrimeField,
    VecFpKernel,
    fits_native_width,
    kernels_enabled,
    numpy_or_none,
    use_kernels,
    use_vector_kernels,
    vector_kernel_for,
    vector_kernels_enabled,
)
from repro.algebra.kernels import FpKernel
from repro.algebra.vkernels import NATIVE_LIMB_BITS, VECTOR_MIN_COEFFS
from repro.core import AdaptiveLookahead, VerificationMode, outsource_document
from repro.workloads import RandomXmlConfig, generate_random_document

numpy_present = pytest.mark.skipif(numpy_or_none() is None,
                                   reason="numpy not installed")

#: Primes spanning the native-width boundary: tiny characteristics, the
#: bench prime, the largest 31-bit prime (which forces the chunked
#: convolution and the Horner evaluation sweep), and one just past the
#: boundary that must stay on the flat bigint tier.
NATIVE_PRIMES = [2, 3, 5, 97, 10007, 2147483647]
WIDE_PRIME = 4294967311  # > 2^32: (p-1)^2 overflows the 63-bit limb

residues = st.data()


def _random_residues(rng, p, max_len=80):
    return [rng.randrange(p) for _ in range(rng.randrange(max_len))]


class TestTierSelection:
    @numpy_present
    def test_native_prime_gets_vectorized_kernel(self):
        for p in NATIVE_PRIMES:
            assert isinstance(PrimeField(p).kernel(), VecFpKernel)

    def test_wide_prime_stays_flat(self):
        kernel = PrimeField(WIDE_PRIME).kernel()
        assert isinstance(kernel, FpKernel)
        assert not isinstance(kernel, VecFpKernel)
        assert vector_kernel_for(WIDE_PRIME) is None

    def test_kernels_disabled_turns_every_tier_off(self):
        with use_kernels(False):
            assert PrimeField(10007).kernel() is None

    @numpy_present
    def test_vector_switch_pins_flat_tier(self):
        field = PrimeField(10007)
        with use_vector_kernels(False):
            assert not vector_kernels_enabled()
            kernel = field.kernel()
            assert isinstance(kernel, FpKernel)
            assert not isinstance(kernel, VecFpKernel)
        assert vector_kernels_enabled()
        assert kernels_enabled()

    def test_fits_native_width_boundary(self):
        assert fits_native_width(2)
        assert fits_native_width(2147483647)
        assert not fits_native_width(WIDE_PRIME)
        assert not fits_native_width(1)
        # The exact boundary: largest p with (p-1)^2 + (p-1) < 2^63.
        limit = 1 << NATIVE_LIMB_BITS
        for p in range(3037000499 - 2, 3037000499 + 3):
            assert fits_native_width(p) == ((p - 1) ** 2 + (p - 1) < limit)

    @numpy_present
    def test_vec_kernel_rejects_wide_prime(self):
        with pytest.raises(ValueError):
            VecFpKernel(WIDE_PRIME)


@numpy_present
class TestKernelBitIdentity:
    """VecFpKernel output equals FpKernel output, value for value."""

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(NATIVE_PRIMES), st.integers(0, 2 ** 32))
    def test_all_ops_match_flat(self, p, seed):
        rng = random.Random(seed)
        vec = VecFpKernel(p)
        flat = FpKernel(p)
        a = _random_residues(rng, p)
        b = _random_residues(rng, p)
        scalar = rng.randrange(p)
        point = rng.randrange(p)
        assert vec.add(a, b) == flat.add(a, b)
        assert vec.sub(a, b) == flat.sub(a, b)
        assert vec.neg(a) == flat.neg(a)
        assert vec.scalar_mul(a, scalar) == flat.scalar_mul(a, scalar)
        assert vec.mul(a, b) == flat.mul(a, b)
        assert vec.derivative(a) == flat.derivative(a)
        seqs = [_random_residues(rng, p, 40) for _ in range(rng.randrange(12))]
        assert vec.evaluate_many(seqs, point) == flat.evaluate_many(seqs, point)

    def test_results_are_python_ints(self):
        vec = VecFpKernel(10007)
        out = vec.mul(list(range(1, 40)), list(range(1, 40)))
        assert all(type(c) is int for c in out)

    def test_empty_and_constant_shares(self):
        for p in NATIVE_PRIMES:
            vec = VecFpKernel(p)
            flat = FpKernel(p)
            for a in ([], [0], [1 % p], [p - 1]):
                for b in ([], [0], [p - 1]):
                    assert vec.add(a, b) == flat.add(a, b)
                    assert vec.mul(a, b) == flat.mul(a, b)
                assert vec.neg(a) == flat.neg(a)
                assert vec.derivative(a) == flat.derivative(a)
            assert vec.evaluate_many([], 3) == []
            assert vec.evaluate_many([[], [0], [p - 1]], p - 1) == \
                flat.evaluate_many([[], [0], [p - 1]], p - 1)

    def test_chunked_convolution_is_exact(self):
        # (p-1)^2 ~ 4.6e18 for the largest 31-bit prime: already two
        # convolution terms overflow the limb, so this exercises the
        # chunk-reduce-accumulate path on every product.
        p = 2147483647
        rng = random.Random(0xC0FFEE)
        vec = VecFpKernel(p)
        flat = FpKernel(p)
        a = [rng.randrange(p) for _ in range(130)]
        b = [rng.randrange(p) for _ in range(70)]
        assert vec.mul(a, b) == flat.mul(a, b)

    def test_horner_sweep_is_exact(self):
        # Same prime: cols * (p-1)^2 >= 2^63 forces the column-wise Horner
        # fallback inside evaluate_matrix.
        p = 2147483647
        rng = random.Random(0xFEED)
        vec = VecFpKernel(p)
        flat = FpKernel(p)
        seqs = [[rng.randrange(p) for _ in range(60)] for _ in range(20)]
        point = rng.randrange(p)
        assert vec.evaluate_many(seqs, point) == flat.evaluate_many(seqs, point)

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from([5, 97, 10007]), st.integers(0, 2 ** 32))
    def test_polynomial_ops_match_generic(self, p, seed):
        rng = random.Random(seed)
        field = PrimeField(p)
        span = max(2, VECTOR_MIN_COEFFS * 3)
        a = Polynomial([rng.randrange(p) for _ in range(rng.randrange(span))],
                       field)
        b = Polynomial([rng.randrange(p) for _ in range(rng.randrange(span))],
                       field)
        fast = [(a + b).coeffs, (a - b).coeffs, (a * b).coeffs, (-a).coeffs]
        with use_kernels(False):
            slow = [(a + b).coeffs, (a - b).coeffs, (a * b).coeffs,
                    (-a).coeffs]
        assert fast == slow


def _evaluate_store_three_ways(store, node_ids, point):
    with use_kernels(True), use_vector_kernels(True):
        vectorized = store.evaluate_many(node_ids, point)
    with use_vector_kernels(False):
        flat = store.evaluate_many(node_ids, point)
    with use_kernels(False):
        generic = store.evaluate_many(node_ids, point)
    return vectorized, flat, generic


@numpy_present
class TestStoreTierIdentity:
    @pytest.fixture(scope="class")
    def outsourced(self):
        document = generate_random_document(
            RandomXmlConfig(element_count=300, tag_vocabulary_size=16,
                            tag_skew=1.4, seed=11))
        return outsource_document(document, seed=b"vkernel-tests"), document

    def test_sqlite_evaluate_many_identical_across_tiers(self, outsourced,
                                                         tmp_path):
        from repro.net import SQLiteShareStore

        (client, server_tree, _), _ = outsourced
        store = SQLiteShareStore.from_tree(str(tmp_path / "s.db"), server_tree,
                                           cache_size=64)
        node_ids = store.node_ids()
        vectorized, flat, generic = _evaluate_store_three_ways(
            store, node_ids, 5)
        assert vectorized == flat == generic
        # Second pass reuses rows the vector path cached as int64 arrays.
        again, _, _ = _evaluate_store_three_ways(store, node_ids, 7)
        with use_kernels(False):
            assert store.evaluate_many(node_ids, 7) == again
        # share_of must upgrade an array-cached row to a Polynomial.
        share = store.share_of(node_ids[0])
        assert share == server_tree.share_of(node_ids[0])
        store.close()

    def test_in_memory_evaluate_many_identical_across_tiers(self, outsourced):
        from repro.net import InMemoryShareStore

        (client, server_tree, _), _ = outsourced
        store = InMemoryShareStore(server_tree)
        node_ids = store.node_ids()
        for point in (3, 5, 11):
            vectorized, flat, generic = _evaluate_store_three_ways(
                store, node_ids, point)
            assert vectorized == flat == generic
            # ... and all of them equal the tree's own scalar walk.
            assert vectorized == server_tree.evaluate_many(node_ids, point)
        # Edge cases: empty request and a single constant-share node.
        assert store.evaluate_many([], 3) == {}
        one = node_ids[:1]
        assert store.evaluate_many(one, 7) == \
            server_tree.evaluate_many(one, 7)

    def test_full_lookup_identical_across_tiers(self, outsourced):
        from repro.net import connect_in_process

        (client, server_tree, _), document = outsourced
        tags = sorted(document.distinct_tags())[:4]
        answers = {}
        for tier in ("vectorized", "flat", "generic"):
            adapter, _, _ = connect_in_process(server_tree)
            engine = client.engine(adapter, VerificationMode.NONE)
            if tier == "generic":
                with use_kernels(False):
                    answers[tier] = [tuple(engine.lookup(t).matches)
                                     for t in tags]
            elif tier == "flat":
                with use_vector_kernels(False):
                    answers[tier] = [tuple(engine.lookup(t).matches)
                                     for t in tags]
            else:
                answers[tier] = [tuple(engine.lookup(t).matches)
                                 for t in tags]
        assert answers["vectorized"] == answers["flat"] == answers["generic"]
        assert any(answers["vectorized"])


class TestAdaptiveLookahead:
    def test_initial_depth_clamped(self):
        assert AdaptiveLookahead().depth == 1
        assert AdaptiveLookahead(initial=9).depth == 4
        assert AdaptiveLookahead(initial=-3, min_depth=1).depth == 1
        assert int(AdaptiveLookahead(initial=2)) == 2
        assert [0, 10, 20][AdaptiveLookahead(initial=2)] == 20  # __index__

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLookahead(min_depth=3, max_depth=2)
        with pytest.raises(ValueError):
            AdaptiveLookahead(min_depth=-1)
        with pytest.raises(ValueError):
            AdaptiveLookahead(deepen_below=0.6, backoff_above=0.5)

    def test_deepen_hold_backoff(self):
        controller = AdaptiveLookahead(initial=1)
        assert controller.observe(10, 0) == 2      # rate 0.0: deepen
        assert controller.observe(10, 3) == 2      # rate 0.3: hold
        assert controller.observe(10, 8) == 1      # rate 0.8: back off
        assert controller.observe(0, 0) == 1       # empty round: ignored
        assert (controller.rounds, controller.deepened,
                controller.backed_off) == (3, 1, 1)

    def test_depth_stays_in_bounds(self):
        controller = AdaptiveLookahead(initial=0, min_depth=0, max_depth=2)
        for _ in range(6):
            controller.observe(4, 0)
        assert controller.depth == 2
        for _ in range(6):
            controller.observe(4, 4)
        assert controller.depth == 0

    def test_engine_accepts_adaptive_string_and_controller(self):
        from repro.net import connect_in_process

        document = generate_random_document(
            RandomXmlConfig(element_count=200, tag_vocabulary_size=12,
                            tag_skew=1.3, seed=23))
        client, server_tree, _ = outsource_document(document, seed=b"adapt")
        tags = sorted(document.distinct_tags())[:3]

        def run(lookahead):
            adapter, _, _ = connect_in_process(server_tree)
            engine = client.engine(adapter, VerificationMode.NONE)
            engine.frontier_lookahead = lookahead
            return [tuple(engine.lookup(t).matches) for t in tags], engine

        fixed, _ = run(2)
        via_string, engine = run("adaptive")
        assert isinstance(engine.frontier_lookahead, AdaptiveLookahead)
        assert engine.frontier_lookahead.rounds > 0
        controller = AdaptiveLookahead(initial=2, max_depth=3)
        via_controller, _ = run(controller)
        assert controller.rounds > 0
        assert fixed == via_string == via_controller


class TestNumpyAbsentFallback:
    def test_disable_env_var_blanks_the_tier(self):
        script = (
            "from repro.algebra import numpy_or_none, vector_kernel_for, "
            "PrimeField, VecFpKernel\n"
            "from repro.algebra.kernels import FpKernel\n"
            "assert numpy_or_none() is None\n"
            "assert vector_kernel_for(10007) is None\n"
            "kernel = PrimeField(10007).kernel()\n"
            "assert isinstance(kernel, FpKernel)\n"
            "assert not isinstance(kernel, VecFpKernel)\n"
            "from repro.net.pages import decode_coefficients_batch, "
            "encode_coefficients\n"
            "assert decode_coefficients_batch([encode_coefficients([1, 2])]) "
            "is None\n"
            "from repro.core import outsource_document\n"
            "from repro.workloads import RandomXmlConfig, "
            "generate_random_document\n"
            "doc = generate_random_document(RandomXmlConfig(element_count=60, "
            "tag_vocabulary_size=8, seed=3))\n"
            "client, tree, _ = outsource_document(doc, seed=b'no-numpy')\n"
            "tag = sorted(doc.distinct_tags())[0]\n"
            "outcome = client.lookup(tree, tag)\n"
            "assert outcome.matches is not None\n"
            "print('fallback-ok')\n"
        )
        env = dict(os.environ, REPRO_DISABLE_NUMPY="1",
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(os.path.dirname(__file__), os.pardir,
                                     "src")]
                       + ([os.environ["PYTHONPATH"]]
                          if os.environ.get("PYTHONPATH") else [])))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout
