"""Tests for the extension field F_{p^e}."""

import random

import pytest

from repro.algebra import ExtensionField, Polynomial, PrimeField, find_irreducible_polynomial
from repro.algebra.poly import is_irreducible_mod_p
from repro.errors import AlgebraError


class TestIrreduciblePolynomialSearch:
    def test_found_polynomials_are_irreducible(self):
        for p, degree in ((2, 3), (3, 2), (5, 2), (7, 3)):
            modulus = find_irreducible_polynomial(p, degree)
            assert modulus.degree == degree
            assert is_irreducible_mod_p(modulus, p)

    def test_degree_one(self):
        assert find_irreducible_polynomial(5, 1).degree == 1

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            find_irreducible_polynomial(5, 0)


class TestConstruction:
    def test_rejects_composite_characteristic(self):
        with pytest.raises(ValueError):
            ExtensionField(4, 2)

    def test_rejects_wrong_modulus_degree(self):
        modulus = find_irreducible_polynomial(3, 3)
        with pytest.raises(ValueError):
            ExtensionField(3, 2, modulus)

    def test_rejects_reducible_modulus(self):
        reducible = Polynomial([0, 0, 1], PrimeField(3))  # x^2
        with pytest.raises(AlgebraError):
            ExtensionField(3, 2, reducible)

    def test_order(self):
        assert ExtensionField(2, 4).order() == 16
        assert ExtensionField(3, 2).order() == 9


class TestFieldAxioms:
    def test_gf4_multiplication_table(self):
        field = ExtensionField(2, 2)
        elements = list(field.elements())
        assert len(elements) == 4
        # Every non-zero element has an inverse and the group is cyclic of order 3.
        for a in elements:
            if a == field.zero:
                continue
            assert field.mul(a, field.invert(a)) == field.one
            assert field.pow(a, 3) == field.one

    def test_distributivity_gf9(self):
        field = ExtensionField(3, 2)
        elements = list(field.elements())
        for a in elements[:5]:
            for b in elements:
                for c in elements[:5]:
                    left = field.mul(a, field.add(b, c))
                    right = field.add(field.mul(a, b), field.mul(a, c))
                    assert left == right

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            ExtensionField(2, 3).invert((0, 0, 0))

    def test_integers_embed_as_constants(self):
        field = ExtensionField(5, 2)
        assert field.canonical(7) == (2, 0)
        assert field.add(3, 4) == (2, 0)

    def test_frobenius(self):
        # In F_{p^e}, x -> x^p is an automorphism fixing the prime field.
        field = ExtensionField(3, 2)
        for value in range(3):
            embedded = field.canonical(value)
            assert field.pow(embedded, 3) == embedded


class TestConversions:
    def test_int_roundtrip(self):
        field = ExtensionField(3, 3)
        for value in range(field.order()):
            assert field.to_int(field.from_int(value)) == value

    def test_random_elements_valid(self):
        field = ExtensionField(5, 2)
        rng = random.Random(0)
        for _ in range(50):
            element = field.random_element(rng)
            assert len(element) == 2
            assert all(0 <= c < 5 for c in element)

    def test_element_bits(self):
        assert ExtensionField(5, 2).element_bits((1, 1)) == 6

    def test_format(self):
        field = ExtensionField(5, 2)
        assert field.format_element((3, 0)) == "3"
        assert field.format_element((1, 2)) == "(1,2)"

    def test_equality(self):
        assert ExtensionField(3, 2) == ExtensionField(3, 2)
        assert ExtensionField(3, 2) != ExtensionField(3, 3)
