"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads import figure1_document
from repro.xmltree import serialize_document


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "customers.xml"
    path.write_text(serialize_document(figure1_document()), encoding="utf-8")
    return str(path)


@pytest.fixture
def outsourced_files(tmp_path, xml_file, capsys):
    server = str(tmp_path / "server.json")
    client = str(tmp_path / "client.json")
    code = main(["outsource", xml_file, "--server-out", server,
                 "--client-out", client, "--seed", "cli-test-seed",
                 "--allow-p-minus-one"])
    capsys.readouterr()
    assert code == 0
    return server, client


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_known_commands(self):
        parser = build_parser()
        for command in ("outsource", "lookup", "query", "inspect", "decode",
                        "serve", "bench"):
            assert command in parser.format_help()

    def test_serve_options(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "server.db", "--port", "0",
                                  "--async", "--document-id", "docs"])
        assert args.command == "serve"
        assert args.use_async and args.port == 0
        assert args.document_id == "docs"


class TestOutsource:
    def test_creates_both_files(self, tmp_path, xml_file, capsys):
        server = tmp_path / "server.json"
        client = tmp_path / "client.json"
        code = main(["outsource", xml_file, "--server-out", str(server),
                     "--client-out", str(client), "--seed", "deadbeef"])
        output = capsys.readouterr().out
        assert code == 0
        assert "outsourced 5 elements" in output
        server_data = json.loads(server.read_text())
        client_data = json.loads(client.read_text())
        assert server_data["ring"]["kind"] == "fp"
        assert "secrets" in client_data and "mapping" in client_data["secrets"]
        # No tag name leaks into the server file.
        assert "customers" not in server.read_text()

    def test_int_ring_option(self, tmp_path, xml_file, capsys):
        server = tmp_path / "server.json"
        client = tmp_path / "client.json"
        code = main(["outsource", xml_file, "--server-out", str(server),
                     "--client-out", str(client), "--ring", "int"])
        assert code == 0
        assert json.loads(server.read_text())["ring"]["kind"] == "int"
        capsys.readouterr()

    def test_missing_input_file(self, tmp_path, capsys):
        code = main(["outsource", str(tmp_path / "missing.xml"),
                     "--server-out", str(tmp_path / "s.json"),
                     "--client-out", str(tmp_path / "c.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestQueries:
    def test_lookup(self, outsourced_files, capsys):
        server, client = outsourced_files
        code = main(["lookup", server, client, "client"])
        output = capsys.readouterr().out
        assert code == 0
        assert "2 match(es)" in output
        assert "customers/client" in output

    def test_lookup_modes(self, outsourced_files, capsys):
        server, client = outsourced_files
        for mode in ("full", "constant-only", "none"):
            assert main(["lookup", server, client, "name", "--mode", mode]) == 0
        capsys.readouterr()

    def test_query_command(self, outsourced_files, capsys):
        server, client = outsourced_files
        code = main(["query", server, client, "//client/name"])
        output = capsys.readouterr().out
        assert code == 0
        assert "2 match(es)" in output

    def test_query_strategies(self, outsourced_files, capsys):
        server, client = outsourced_files
        for strategy in ("single-pass", "left-to-right"):
            assert main(["query", server, client, "//customers/client",
                         "--strategy", strategy]) == 0
        capsys.readouterr()

    def test_unknown_tag_is_reported_as_error(self, outsourced_files, capsys):
        server, client = outsourced_files
        code = main(["lookup", server, client, "nonexistent"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInspectAndDecode:
    def test_inspect(self, outsourced_files, capsys):
        server, _ = outsourced_files
        assert main(["inspect", server]) == 0
        output = capsys.readouterr().out
        assert "nodes:       5" in output
        assert "structure and share polynomials only" in output

    def test_decode(self, outsourced_files, capsys):
        server, client = outsourced_files
        assert main(["decode", server, client, "4"]) == 0
        assert capsys.readouterr().out.strip() == "customers/client/name"

    def test_mismatched_client_and_server(self, tmp_path, xml_file, capsys):
        # Outsource twice with different rings; mixing the files must fail.
        fp_server, fp_client = str(tmp_path / "s1.json"), str(tmp_path / "c1.json")
        int_server, int_client = str(tmp_path / "s2.json"), str(tmp_path / "c2.json")
        main(["outsource", xml_file, "--server-out", fp_server,
              "--client-out", fp_client, "--allow-p-minus-one"])
        main(["outsource", xml_file, "--server-out", int_server,
              "--client-out", int_client, "--ring", "int"])
        capsys.readouterr()
        code = main(["lookup", fp_server, int_client, "client"])
        assert code == 1
        assert "different ring" in capsys.readouterr().err


class TestEdit:
    def test_edit_options(self):
        parser = build_parser()
        args = parser.parse_args(["edit", "client.json", "rename", "4",
                                  "--tag", "client", "--port", "0"])
        assert args.command == "edit"
        assert args.node_id == 4 and args.tag == "client"
        assert args.max_rebases == 4

    def test_remote_rename_and_delete(self, outsourced_files, capsys):
        from repro.net import (
            SearchServer,
            ThreadedSearchServer,
            open_share_store,
        )

        server_file, client_file = outsourced_files
        store = open_share_store(server_file)
        server = ThreadedSearchServer(SearchServer(store))
        server.start()
        try:
            host, port = server.address
            code = main(["edit", client_file, "rename", "4",
                         "--tag", "client",
                         "--host", host, "--port", str(port)])
            output = capsys.readouterr().out
            assert code == 0
            assert "committed" in output and "operation=rename" in output
            code = main(["edit", client_file, "delete", "2",
                         "--host", host, "--port", str(port)])
            assert code == 0
            assert "operation=delete" in capsys.readouterr().out
        finally:
            server.stop()
        # The hosted store really was edited over the wire.
        assert 2 not in store.node_ids()

    def test_insert_requires_xml(self, outsourced_files, capsys):
        _, client_file = outsourced_files
        assert main(["edit", client_file, "insert", "1"]) == 1
        assert "--xml" in capsys.readouterr().err

    def test_rename_requires_tag(self, outsourced_files, capsys):
        _, client_file = outsourced_files
        assert main(["edit", client_file, "rename", "1"]) == 1
        assert "--tag" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_snapshot(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_TEST.json")
        assert main(["bench", "--quick", "--repeat", "1", "--out", out]) == 0
        output = capsys.readouterr().out
        assert "snapshot BENCH_1" in output
        assert "end-to-end" in output
        with open(out, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["snapshot"] == "BENCH_1"
        assert "poly_mul_fp" in snapshot
        assert "quotient_reduce" in snapshot
        # Shape only — threshold checks live in benchmarks/test_bench_kernels.py
        # where timing is controlled; asserting a ratio here would be flaky.
        assert snapshot["end_to_end"]["speedup"] > 0.0

    def test_bench_command_listed(self):
        assert "bench" in build_parser().format_help()

    def test_bench_concurrency_writes_bench3_snapshot(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_3_TEST.json")
        assert main(["bench", "--concurrency", "2", "--quick",
                     "--out", out]) == 0
        output = capsys.readouterr().out
        assert "snapshot BENCH_3" in output
        with open(out, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        assert snapshot["snapshot"] == "BENCH_3"
        concurrency = snapshot["concurrency"]
        assert concurrency["identical_to_reference"] is True
        assert set(concurrency["modes"]) == {"sync_threaded", "async_coalesced"}
        # Shape only — the async-beats-sync assertion needs the full-size
        # document and lives in the recorded BENCH_3.json, not in a quick
        # run on a tiny workload.
        for mode in concurrency["modes"].values():
            for row in mode.values():
                assert row["lookups_per_s"] > 0.0

    def test_bench_concurrency_rejects_zero_sessions(self, capsys):
        assert main(["bench", "--concurrency", "0"]) == 2
        assert "at least one session" in capsys.readouterr().err

    def test_bench_suite_flags_are_mutually_exclusive(self, capsys):
        assert main(["bench", "--kernels", "--faults"]) == 2
        err = capsys.readouterr().err
        assert "--kernels" in err and "--faults" in err
        assert main(["bench", "--kernels", "--updates"]) == 2

    def test_bench_kernels_flag_parses(self):
        args = build_parser().parse_args(["bench", "--kernels", "--quick"])
        assert args.kernels is True and args.quick is True
