"""Smoke tests: every bundled example must run to completion.

The examples are part of the public deliverable; running them in-process
(with a patched ``__main__`` guard) keeps them from silently rotting as the
library evolves.
"""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
_EXAMPLES = sorted(path.name for path in _EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", _EXAMPLES)
def test_example_runs_to_completion(example, capsys):
    runpy.run_path(str(_EXAMPLES_DIR / example), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{example} produced no output"


def test_all_expected_examples_present():
    expected = {
        "quickstart.py",
        "paper_figures.py",
        "outsourced_catalog.py",
        "advanced_xpath.py",
        "multi_server.py",
        "smc_voting.py",
        "security_audit.py",
        "updates_and_keywords.py",
    }
    assert expected <= set(_EXAMPLES)


def test_quickstart_output_mentions_matches(capsys):
    runpy.run_path(str(_EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "//client matches node ids: [1, 3]" in output
    assert "Server view" in output


def test_paper_figures_output_contains_figure2_values(capsys):
    runpy.run_path(str(_EXAMPLES_DIR / "paper_figures.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "3x^3 + 3x^2 + 3x + 3" in output
    assert "265x + 45" in output
