"""Tests for the four baseline systems and their agreement with ground truth."""

import pytest

from repro.baselines import (
    BloomFilter,
    DownloadAllClient,
    PlaintextSearchIndex,
    build_bloom_index,
    build_linear_scan,
    decrypt_blob,
    encrypt_blob,
    preorder_index,
)
from repro.prg import DeterministicPRG
from repro.workloads import (
    CatalogConfig,
    generate_catalog_document,
    generate_xmark_document,
)
from repro.xmltree import parse_document


class TestPlaintextBaseline:
    def test_lookup_and_query(self, catalog_document):
        index = PlaintextSearchIndex(catalog_document)
        result = index.lookup("customer")
        assert len(result.matches) == 6
        assert result.stats.nodes_visited == catalog_document.size()
        assert index.query("//customer/order").matches

    def test_storage_formulas(self, catalog_document):
        index = PlaintextSearchIndex(catalog_document)
        assert index.storage_bits_formula() > 0
        assert index.storage_bits_measured() > index.storage_bits_formula()


class TestDownloadAll:
    def test_stream_cipher_roundtrip(self):
        prg = DeterministicPRG(b"stream")
        plaintext = b"some xml payload" * 10
        ciphertext = encrypt_blob(plaintext, prg)
        assert ciphertext != plaintext
        assert decrypt_blob(ciphertext, prg) == plaintext

    def test_blob_is_opaque_without_the_key(self):
        prg = DeterministicPRG(b"key-a")
        ciphertext = encrypt_blob(b"<customers/>", prg)
        wrong = decrypt_blob(ciphertext, DeterministicPRG(b"key-b"))
        assert wrong != b"<customers/>"

    def test_query_correct_and_downloads_everything(self, catalog_document):
        client = DownloadAllClient(DeterministicPRG(b"dl"))
        server = client.outsource(catalog_document)
        truth = PlaintextSearchIndex(catalog_document).query("//customer//product")
        result = client.query(server, "//customer//product")
        assert result.matches == truth.matches
        # Bandwidth equals the whole (encrypted) document for every query.
        assert result.stats.bytes_to_client == len(server.blob)
        assert server.storage_bits() == len(server.blob) * 8
        again = client.lookup(server, "customer")
        assert again.stats.bytes_to_client == len(server.blob)


class TestLinearScan:
    def test_lookup_matches_ground_truth(self, catalog_document):
        client, index = build_linear_scan(catalog_document)
        plaintext = PlaintextSearchIndex(catalog_document)
        for tag in catalog_document.distinct_tags():
            assert client.lookup(index, tag).matches == plaintext.lookup(tag).matches

    def test_every_query_scans_all_nodes(self, catalog_document):
        client, index = build_linear_scan(catalog_document)
        result = client.lookup(index, "customer")
        assert result.stats.nodes_visited == catalog_document.size()
        assert result.stats.server_operations == catalog_document.size()

    def test_path_queries_joined_via_structure(self, catalog_document):
        client, index = build_linear_scan(catalog_document)
        plaintext = PlaintextSearchIndex(catalog_document)
        for query in ("//customer/order", "//customer//product", "/company/customers"):
            assert client.query(index, query).matches == plaintext.query(query).matches

    def test_wildcard_path_query(self, catalog_document):
        client, index = build_linear_scan(catalog_document)
        plaintext = PlaintextSearchIndex(catalog_document)
        assert client.query(index, "//order/*").matches == \
            plaintext.query("//order/*").matches

    def test_trapdoors_are_deterministic_and_private(self):
        document = parse_document("<a><b/></a>")
        client, _ = build_linear_scan(document)
        assert client.trapdoor("b") == client.trapdoor("b")
        assert client.trapdoor("b") != client.trapdoor("a")
        other_client, _ = build_linear_scan(document, seed=b"other")
        assert other_client.trapdoor("b") != client.trapdoor("b")

    def test_storage_accounting(self, catalog_document):
        _, index = build_linear_scan(catalog_document)
        assert index.storage_bits() == catalog_document.size() * (16 + 16) * 8
        assert index.node_count() == catalog_document.size()


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(50, 0.01)
        items = [f"item-{i}".encode() for i in range(50)]
        for item in items:
            bloom.add(item)
        assert all(bloom.might_contain(item) for item in items)

    def test_false_positive_rate_roughly_respected(self):
        bloom = BloomFilter.for_capacity(100, 0.05)
        for i in range(100):
            bloom.add(f"present-{i}".encode())
        false_positives = sum(
            bloom.might_contain(f"absent-{i}".encode()) for i in range(2000))
        assert false_positives / 2000 < 0.15

    def test_union(self):
        a = BloomFilter(64, 3)
        b = BloomFilter(64, 3)
        a.add(b"x")
        b.add(b"y")
        union = a.union(b)
        assert union.might_contain(b"x") and union.might_contain(b"y")
        with pytest.raises(ValueError):
            a.union(BloomFilter(128, 3))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(4, 1)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.5)


class TestBloomIndex:
    def test_lookup_matches_ground_truth(self, catalog_document):
        client, index = build_bloom_index(catalog_document)
        plaintext = PlaintextSearchIndex(catalog_document)
        for tag in catalog_document.distinct_tags():
            assert client.lookup(index, tag).matches == plaintext.lookup(tag).matches

    def test_pruning_skips_subtrees(self, catalog_document):
        client, index = build_bloom_index(catalog_document)
        rare = client.lookup(index, "location")
        assert rare.stats.nodes_visited < catalog_document.size()

    def test_smaller_filters_cause_more_false_positive_visits(self):
        document = generate_xmark_document()
        _, tight_index = build_bloom_index(document, false_positive_rate=0.001)
        tight_client, _ = build_bloom_index(document, false_positive_rate=0.001)
        loose_client, loose_index = build_bloom_index(document, false_positive_rate=0.4)
        tag = "education"
        tight = tight_client.lookup(tight_index, tag)
        loose = loose_client.lookup(loose_index, tag)
        assert tight.matches == loose.matches
        assert loose.stats.nodes_visited >= tight.stats.nodes_visited
        assert loose_index.storage_bits() < tight_index.storage_bits()

    def test_storage_positive(self, catalog_document):
        _, index = build_bloom_index(catalog_document)
        assert index.storage_bits() > 0
        assert index.node_count() == catalog_document.size()


class TestCommonHelpers:
    def test_preorder_index_matches_scheme_ids(self, catalog_document):
        index = preorder_index(catalog_document)
        elements = catalog_document.elements()
        assert index[id(elements[0])] == 0
        assert index[id(elements[-1])] == catalog_document.size() - 1
