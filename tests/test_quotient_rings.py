"""Tests for the two encoding rings of the paper (§4.1).

Covers reduction, arithmetic, evaluation semantics, the exact lemma/theorem
statements (Lemma 1, Theorems 1 and 2) and the tag-recovery machinery.
"""

import random

import pytest

from repro.algebra import (
    FpQuotientRing,
    IntQuotientRing,
    Polynomial,
    PrimeField,
    ZZ,
    default_int_modulus,
)
from repro.errors import AlgebraError, TagRecoveryError


class TestFpQuotientReduction:
    def test_degree_bound(self):
        ring = FpQuotientRing(5)
        assert ring.degree_bound == 4

    def test_exponent_folding(self):
        ring = FpQuotientRing(5)
        # x^4 == 1, x^5 == x, x^6 == x^2 in F_5[x]/(x^4 - 1).
        assert ring.reduce(Polynomial.monomial(4, ring=ring.field)) == ring.one
        assert ring.reduce(Polynomial.monomial(5, ring=ring.field)) == ring.reduce(
            Polynomial.x(ring.field))
        assert ring.reduce(Polynomial.monomial(8, ring=ring.field)) == ring.one

    def test_lemma_1(self):
        """Lemma 1: prod_{i=1}^{p-1} (x - i) == x^{p-1} - 1 (mod p)."""
        for p in (3, 5, 7, 11):
            field = PrimeField(p)
            product = Polynomial.from_roots(list(range(1, p)), field)
            expected = Polynomial([-1] + [0] * (p - 2) + [1], field)
            assert product == expected

    def test_paper_figure2a_product(self):
        """((x-2)(x-4))^2 (x-3) reduces to 3x^3+3x^2+3x+3 in F_5[x]/(x^4-1)."""
        ring = FpQuotientRing(5)
        client = ring.mul(ring.from_tag_value(2), ring.from_tag_value(4))
        root = ring.mul(ring.from_tag_value(3), ring.mul(client, client))
        assert root == ring.from_coefficients([3, 3, 3, 3])
        assert client == ring.from_coefficients([3, 4, 1])

    def test_evaluation_is_mod_p(self):
        ring = FpQuotientRing(5)
        element = ring.from_coefficients([3, 4, 1])      # (x-2)(x-4)
        assert ring.evaluate(element, 2) == 0
        assert ring.evaluate(element, 3) == (3 + 12 + 9) % 5
        assert ring.evaluation_is_zero(ring.evaluate(element, 2), 2)

    def test_random_element_in_canonical_form(self):
        ring = FpQuotientRing(7)
        rng = random.Random(0)
        for _ in range(20):
            element = ring.random_element(rng)
            assert element.degree < ring.degree_bound
            assert all(0 <= c < 7 for c in element.coeffs)

    def test_storage_bits_formula_shape(self):
        ring = FpQuotientRing(5)
        # Every element costs (p-1) * ceil(log2 p) bits regardless of content.
        assert ring.element_storage_bits(ring.one) == 4 * 3
        assert ring.element_storage_bits(ring.zero) == 4 * 3

    def test_modulus_polynomial(self):
        ring = FpQuotientRing(5)
        assert ring.modulus_polynomial().coeffs == (4, 0, 0, 0, 1)

    def test_equality(self):
        assert FpQuotientRing(5) == FpQuotientRing(5)
        assert FpQuotientRing(5) != FpQuotientRing(7)


class TestIntQuotientRing:
    def test_requires_monic(self):
        with pytest.raises(AlgebraError):
            IntQuotientRing(Polynomial([1, 0, 2]))

    def test_requires_irreducible(self):
        with pytest.raises(AlgebraError):
            IntQuotientRing(Polynomial([-1, 0, 1]))      # x^2 - 1 = (x-1)(x+1)

    def test_accepts_x_squared_plus_one(self):
        ring = IntQuotientRing(Polynomial([1, 0, 1]))
        assert ring.degree_bound == 2

    def test_reduction(self):
        ring = IntQuotientRing(default_int_modulus(2))
        # x^2 == -1, so x^3 == -x.
        assert ring.reduce(Polynomial([0, 0, 1])) == Polynomial([-1], ZZ)
        assert ring.reduce(Polynomial([0, 0, 0, 1])) == Polynomial([0, -1], ZZ)

    def test_paper_figure2b_values(self):
        ring = IntQuotientRing(default_int_modulus(2))
        client = ring.mul(ring.from_tag_value(2), ring.from_tag_value(4))
        assert client == Polynomial([7, -6], ZZ)
        root = ring.mul(ring.from_tag_value(3), ring.mul(client, client))
        assert root == Polynomial([45, 265], ZZ)

    def test_evaluation_modulo_r_of_point(self):
        ring = IntQuotientRing(default_int_modulus(2))
        assert ring.evaluation_modulus(2) == 5            # r(2) = 2^2 + 1
        root = Polynomial([45, 265], ZZ)
        assert ring.evaluate(root, 2) == (265 * 2 + 45) % 5 == 0

    def test_degenerate_evaluation_point_rejected(self):
        ring = IntQuotientRing(default_int_modulus(2))
        with pytest.raises(AlgebraError):
            ring.evaluation_modulus(0)                     # r(0) = 1

    def test_storage_grows_with_coefficients(self):
        ring = IntQuotientRing(default_int_modulus(2))
        small = ring.from_coefficients([1, 1])
        large = ring.from_coefficients([10 ** 12, 10 ** 12])
        assert ring.element_storage_bits(large) > ring.element_storage_bits(small)

    def test_equality(self):
        assert IntQuotientRing(default_int_modulus(2)) == IntQuotientRing(
            default_int_modulus(2))


class TestDefaultIntModulus:
    def test_degree_two_is_paper_choice(self):
        assert default_int_modulus(2) == Polynomial([1, 0, 1], ZZ)

    def test_higher_degrees_accepted_by_ring(self):
        for degree in (3, 4, 5):
            ring = IntQuotientRing(default_int_modulus(degree))
            assert ring.degree_bound == degree

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            default_int_modulus(0)


class TestTagRecovery:
    """Theorem 1 and Theorem 2: the mapped value is uniquely recoverable."""

    @pytest.mark.parametrize("ring_factory", [
        lambda: FpQuotientRing(11),
        lambda: IntQuotientRing(default_int_modulus(2)),
        lambda: IntQuotientRing(default_int_modulus(3)),
    ])
    def test_recover_leaf(self, ring_factory):
        ring = ring_factory()
        for value in range(1, 8):
            element = ring.from_tag_value(value)
            assert ring.recover_tag(element, []) == value

    @pytest.mark.parametrize("ring_factory", [
        lambda: FpQuotientRing(11),
        lambda: IntQuotientRing(default_int_modulus(2)),
    ])
    def test_recover_inner_node(self, ring_factory):
        ring = ring_factory()
        children = [ring.from_tag_value(2), ring.from_tag_value(4),
                    ring.mul(ring.from_tag_value(3), ring.from_tag_value(5))]
        for value in (1, 6, 7):
            node = ring.mul(ring.from_tag_value(value), ring.product(children))
            assert ring.recover_tag(node, children) == value

    def test_recover_paper_example(self):
        ring = FpQuotientRing(5)
        client = ring.from_coefficients([3, 4, 1])
        root = ring.from_coefficients([3, 3, 3, 3])
        assert ring.recover_tag(root, [client, client]) == 3
        assert ring.recover_tag(client, [ring.from_tag_value(4)]) == 2

    def test_recover_paper_example_int_ring(self):
        ring = IntQuotientRing(default_int_modulus(2))
        client = ring.from_coefficients([7, -6])
        root = ring.from_coefficients([45, 265])
        assert ring.recover_tag(root, [client, client]) == 3

    def test_inconsistent_node_rejected(self):
        ring = FpQuotientRing(11)
        children = [ring.from_tag_value(2)]
        bogus = ring.add(ring.mul(ring.from_tag_value(3), children[0]), ring.one)
        with pytest.raises(TagRecoveryError):
            ring.recover_tag(bogus, children)

    def test_verify_tag(self):
        ring = FpQuotientRing(7)
        children = [ring.from_tag_value(2)]
        node = ring.mul(ring.from_tag_value(5), children[0])
        assert ring.verify_tag(node, children, 5)
        assert not ring.verify_tag(node, children, 3)

    def test_consistency_equations_agree(self):
        ring = FpQuotientRing(11)
        children = [ring.from_tag_value(2), ring.from_tag_value(7)]
        node = ring.mul(ring.from_tag_value(4), ring.product(children))
        equations = ring.consistency_check(node, children)
        solutions = set()
        for numerator, denominator in equations:
            if denominator == 0:
                continue
            solutions.add(numerator * pow(denominator, -1, 11) % 11)
        assert solutions == {4}
