"""Tests for Lagrange interpolation."""

import random

import pytest

from repro.algebra import PrimeField, Polynomial, lagrange_evaluate_at, lagrange_interpolate


class TestInterpolation:
    def test_recovers_polynomial(self):
        field = PrimeField(101)
        rng = random.Random(5)
        for degree in range(0, 6):
            original = Polynomial.random(degree + 1, field, rng)
            points = [(x, original.evaluate(x)) for x in range(1, degree + 2)]
            recovered = lagrange_interpolate(points, field)
            assert recovered == original

    def test_single_point(self):
        field = PrimeField(7)
        assert lagrange_interpolate([(3, 5)], field) == Polynomial([5], field)

    def test_duplicate_x_rejected(self):
        field = PrimeField(7)
        with pytest.raises(ValueError):
            lagrange_interpolate([(1, 2), (1, 3)], field)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate([], PrimeField(7))

    def test_requires_field(self):
        from repro.algebra import ZZ

        with pytest.raises(TypeError):
            lagrange_interpolate([(1, 1)], ZZ)


class TestEvaluateAt:
    def test_matches_full_interpolation(self):
        field = PrimeField(97)
        rng = random.Random(11)
        for _ in range(10):
            original = Polynomial.random(4, field, rng)
            points = [(x, original.evaluate(x)) for x in (2, 5, 9, 11)]
            for at in (0, 1, 50):
                direct = lagrange_evaluate_at(points, at, field)
                assert direct == original.evaluate(at)

    def test_secret_at_zero(self):
        # The classic Shamir use: the secret is the value at zero.
        field = PrimeField(13)
        secret_poly = Polynomial([secret := 7, 3, 5], field)
        shares = [(i, secret_poly.evaluate(i)) for i in (1, 4, 6)]
        assert lagrange_evaluate_at(shares, 0, field) == secret
