"""Wire-framing tests: codec round trips, truncation, oversize rejection.

The framed socket transports depend on the length-prefixed codec of
:mod:`repro.net.framing` being exact: every payload survives a round trip
through arbitrary chunkings, and every malformed stream is rejected
loudly before unbounded buffering can happen.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    decode_frame_length,
    encode_frame,
)


class TestEncodeFrame:
    def test_header_plus_payload(self):
        frame = encode_frame(b"abc")
        assert frame == b"\x00\x00\x00\x03abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(b"")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(b"x" * 11, max_frame_bytes=10)

    def test_limit_is_inclusive(self):
        assert encode_frame(b"x" * 10, max_frame_bytes=10)


class TestDecodeFrameLength:
    def test_reads_big_endian_length(self):
        assert decode_frame_length(b"\x00\x00\x01\x00") == 256

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x01")

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x00\x00")

    def test_oversized_announcement_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x00\x0b", max_frame_bytes=10)


class TestFrameAssembler:
    def test_single_frame(self):
        assembler = FrameAssembler()
        assert assembler.feed(encode_frame(b"hello")) == [b"hello"]
        assert assembler.at_boundary()

    def test_many_frames_in_one_chunk(self):
        chunk = b"".join(encode_frame(p) for p in (b"a", b"bb", b"ccc"))
        assert FrameAssembler().feed(chunk) == [b"a", b"bb", b"ccc"]

    def test_byte_at_a_time(self):
        assembler = FrameAssembler()
        frames = []
        for byte in encode_frame(b"slow"):
            frames.extend(assembler.feed(bytes([byte])))
        assert frames == [b"slow"]
        assert assembler.at_boundary()

    def test_truncated_frame_is_not_yielded(self):
        assembler = FrameAssembler()
        frame = encode_frame(b"truncated")
        assert assembler.feed(frame[:-2]) == []
        assert not assembler.at_boundary()
        assert assembler.pending_bytes == len(b"truncated") - 2

    def test_oversized_frame_rejected_from_the_header(self):
        assembler = FrameAssembler(max_frame_bytes=8)
        with pytest.raises(ProtocolError):
            # Only the header arrives; rejection must not wait for payload.
            assembler.feed(b"\x00\x00\x00\x09")

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError):
            FrameAssembler().feed(b"\x00\x00\x00\x00")

    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=20),
           st.integers(min_value=1, max_value=64))
    def test_round_trip_any_chunking(self, payloads, chunk_size):
        stream = b"".join(encode_frame(p) for p in payloads)
        assembler = FrameAssembler()
        out = []
        for offset in range(0, len(stream), chunk_size):
            out.extend(assembler.feed(stream[offset:offset + chunk_size]))
        assert out == payloads
        assert assembler.at_boundary()

    @given(st.binary(min_size=1, max_size=2000))
    def test_round_trip_single_payload(self, payload):
        frame = encode_frame(payload)
        assert decode_frame_length(frame[:FRAME_HEADER_BYTES]) == len(payload)
        assert FrameAssembler().feed(frame) == [payload]

    def test_default_limit_accepts_large_frames(self):
        payload = b"x" * (1024 * 1024)
        assert FrameAssembler(MAX_FRAME_BYTES).feed(
            encode_frame(payload)) == [payload]
