"""Wire-framing tests: codec round trips, truncation, oversize rejection.

The framed socket transports depend on the length-prefixed codec of
:mod:`repro.net.framing` being exact: every payload survives a round trip
through arbitrary chunkings, and every malformed stream is rejected
loudly before unbounded buffering can happen.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net.framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    decode_frame_length,
    encode_frame,
)


class TestEncodeFrame:
    def test_header_plus_payload(self):
        frame = encode_frame(b"abc")
        assert frame == b"\x00\x00\x00\x03abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(b"")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(b"x" * 11, max_frame_bytes=10)

    def test_limit_is_inclusive(self):
        assert encode_frame(b"x" * 10, max_frame_bytes=10)


class TestDecodeFrameLength:
    def test_reads_big_endian_length(self):
        assert decode_frame_length(b"\x00\x00\x01\x00") == 256

    def test_short_header_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x01")

    def test_zero_length_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x00\x00")

    def test_oversized_announcement_rejected(self):
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError):
            decode_frame_length(b"\x00\x00\x00\x0b", max_frame_bytes=10)


class TestFrameAssembler:
    def test_single_frame(self):
        assembler = FrameAssembler()
        assert assembler.feed(encode_frame(b"hello")) == [b"hello"]
        assert assembler.at_boundary()

    def test_many_frames_in_one_chunk(self):
        chunk = b"".join(encode_frame(p) for p in (b"a", b"bb", b"ccc"))
        assert FrameAssembler().feed(chunk) == [b"a", b"bb", b"ccc"]

    def test_byte_at_a_time(self):
        assembler = FrameAssembler()
        frames = []
        for byte in encode_frame(b"slow"):
            frames.extend(assembler.feed(bytes([byte])))
        assert frames == [b"slow"]
        assert assembler.at_boundary()

    def test_truncated_frame_is_not_yielded(self):
        assembler = FrameAssembler()
        frame = encode_frame(b"truncated")
        assert assembler.feed(frame[:-2]) == []
        assert not assembler.at_boundary()
        assert assembler.pending_bytes == len(b"truncated") - 2

    def test_oversized_frame_rejected_from_the_header(self):
        assembler = FrameAssembler(max_frame_bytes=8)
        with pytest.raises(ProtocolError):
            # Only the header arrives; rejection must not wait for payload.
            assembler.feed(b"\x00\x00\x00\x09")

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError):
            FrameAssembler().feed(b"\x00\x00\x00\x00")

    @given(st.lists(st.binary(min_size=1, max_size=200), max_size=20),
           st.integers(min_value=1, max_value=64))
    def test_round_trip_any_chunking(self, payloads, chunk_size):
        stream = b"".join(encode_frame(p) for p in payloads)
        assembler = FrameAssembler()
        out = []
        for offset in range(0, len(stream), chunk_size):
            out.extend(assembler.feed(stream[offset:offset + chunk_size]))
        assert out == payloads
        assert assembler.at_boundary()

    @given(st.binary(min_size=1, max_size=2000))
    def test_round_trip_single_payload(self, payload):
        frame = encode_frame(payload)
        assert decode_frame_length(frame[:FRAME_HEADER_BYTES]) == len(payload)
        assert FrameAssembler().feed(frame) == [payload]

    def test_default_limit_accepts_large_frames(self):
        payload = b"x" * (1024 * 1024)
        assert FrameAssembler(MAX_FRAME_BYTES).feed(
            encode_frame(payload)) == [payload]


class TestFrameAssemblerPoisoning:
    """After an invalid prefix the stream is unrecoverable — say so loudly."""

    def test_rejection_names_length_and_limit(self):
        assembler = FrameAssembler(max_frame_bytes=8)
        with pytest.raises(ProtocolError) as excinfo:
            assembler.feed(b"\x00\x00\x00\x09")
        assert "9-byte frame" in str(excinfo.value)
        assert "8-byte frame limit" in str(excinfo.value)

    def test_poisoned_after_oversize_header(self):
        assembler = FrameAssembler(max_frame_bytes=8)
        assert not assembler.poisoned
        with pytest.raises(ProtocolError):
            assembler.feed(b"\x00\x00\x00\x09")
        assert assembler.poisoned

    def test_valid_frame_after_poisoning_is_refused(self):
        # A bad length prefix destroys the framing: there is no way to
        # know where the next frame starts, so feeding a perfectly valid
        # frame afterwards must re-raise instead of misparsing it.
        assembler = FrameAssembler(max_frame_bytes=8)
        with pytest.raises(ProtocolError) as first:
            assembler.feed(b"\x00\x00\x00\x09")
        with pytest.raises(ProtocolError) as second:
            assembler.feed(encode_frame(b"ok", max_frame_bytes=8))
        assert str(second.value) == str(first.value)
        assert assembler.poisoned

    def test_zero_length_frame_poisons_too(self):
        assembler = FrameAssembler()
        with pytest.raises(ProtocolError):
            assembler.feed(b"\x00\x00\x00\x00")
        assert assembler.poisoned
        with pytest.raises(ProtocolError):
            assembler.feed(encode_frame(b"later"))

    def test_bad_header_split_across_feeds(self):
        # The poisonous prefix arrives one byte at a time interleaved
        # with short reads; rejection happens exactly when the fourth
        # header byte lands, not before.
        assembler = FrameAssembler(max_frame_bytes=8)
        for byte in b"\x00\x00\x00":
            assert assembler.feed(bytes([byte])) == []
            assert not assembler.poisoned
        with pytest.raises(ProtocolError):
            assembler.feed(b"\x09")
        assert assembler.poisoned

    def test_good_frames_before_poison_are_delivered(self):
        assembler = FrameAssembler(max_frame_bytes=8)
        stream = encode_frame(b"first", max_frame_bytes=8) + b"\x00\x00\x00\x09"
        with pytest.raises(ProtocolError):
            assembler.feed(stream)
        # The complete frame preceding the bad prefix was still decoded —
        # the exception only rejects the stream from the poison onwards.
        assembler_ok = FrameAssembler(max_frame_bytes=8)
        frames = assembler_ok.feed(encode_frame(b"first", max_frame_bytes=8))
        assert frames == [b"first"]

    def test_interleaved_partial_feeds_still_assemble(self):
        # Two frames interleaved with arbitrary split points — a
        # truncation mid-frame followed by the rest plus a second frame
        # must yield both, with clean boundary state.
        first = encode_frame(b"alpha")
        second = encode_frame(b"beta")
        assembler = FrameAssembler()
        assert assembler.feed(first[:3]) == []
        assert assembler.feed(first[3:7]) == []
        assert not assembler.at_boundary()
        frames = assembler.feed(first[7:] + second[:5])
        assert frames == [b"alpha"]
        assert assembler.feed(second[5:]) == [b"beta"]
        assert assembler.at_boundary()
        assert not assembler.poisoned
